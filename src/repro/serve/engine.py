"""The thread-safe serving engine: hot cache + memo + thread pool + metrics.

A :class:`ServingEngine` fronts a :class:`~repro.api.store.ReleaseStore`
for query traffic.  The store's own contract is *build once, serve
forever*; the engine adds the serving-side performance layers the paper's
consumers need:

* a **three-tier artifact cache** (:class:`~repro.serve.tiers.TieredArtifactCache`,
  FOCUS-style): hot decoded releases, warm open mmaps of columnar
  artifacts, cold files — popular releases are decoded once and answer
  from memory, demoted releases re-promote from the mmap without any
  parse, and per-hash open locks keep concurrent misses from opening
  the same artifact twice;
* a **result memo** keyed by ``(release hash, QuerySpec.result_key())``,
  so repeated identical requests — the common case under zipfian traffic
  — skip execution entirely (errors memoize too: a request that is
  deterministically invalid stays invalid);
* **batched execution** through :class:`~repro.serve.planner.QueryPlanner`,
  one decode + shared vectorized passes per release group;
* a **ThreadPoolExecutor request path** (:meth:`submit` for single
  requests, ``concurrent=True`` batches fan release groups out across
  threads) — releases are immutable once decoded, so readers never need
  a lock on the artifact itself;
* a :class:`~repro.serve.metrics.MetricsRegistry` recording request
  counts, cache hit ratio, latency percentiles and QPS.

Stores are append-only (artifacts are byte-stable and spec-hash keyed),
so the engine never needs invalidation; prefix resolutions are cached on
the snapshot of hashes first observed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.release import Release
from repro.api.store import ReleaseStore
from repro.exceptions import ReproError
from repro.perf.timer import stage
from repro.resilience.policies import Deadline
from repro.serve.metrics import MetricsRegistry
from repro.serve.planner import QueryPlanner, QueryResult, execute_group
from repro.serve.spec import QuerySpec
from repro.serve.tiers import DEFAULT_WARM_SIZE, TieredArtifactCache

#: Default number of decoded artifacts kept hot.
DEFAULT_CACHE_SIZE = 32

#: Default bound on memoized results.
DEFAULT_MEMO_SIZE = 65_536

#: Default worker threads for the concurrent request path.
DEFAULT_WORKERS = 4


class ServingEngine:
    """Concurrent query serving over a release store.

    Examples
    --------
    >>> import tempfile
    >>> from repro.api.spec import ReleaseSpec
    >>> store = ReleaseStore(tempfile.mkdtemp())
    >>> release = store.get_or_build(
    ...     ReleaseSpec.create("hawaiian", epsilon=2.0, max_size=200))
    >>> engine = ServingEngine(store)
    >>> spec = QuerySpec.create(
    ...     release.provenance.spec_hash[:12], "size_quantile", "national",
    ...     quantile=0.5)
    >>> result = engine.execute(spec)
    >>> result.ok and result.value >= 0
    True
    >>> engine.metrics.snapshot()["artifact_loads"]
    1
    """

    def __init__(
        self,
        store: ReleaseStore,
        cache_size: int = DEFAULT_CACHE_SIZE,
        memo_size: int = DEFAULT_MEMO_SIZE,
        max_workers: int = DEFAULT_WORKERS,
        memoize: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        warm_size: int = DEFAULT_WARM_SIZE,
        request_deadline: Optional[float] = None,
    ) -> None:
        if cache_size < 1:
            raise ReproError(f"cache_size must be >= 1, got {cache_size}")
        if max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {max_workers}")
        if request_deadline is not None and request_deadline <= 0:
            raise ReproError(
                f"request_deadline must be > 0, got {request_deadline}"
            )
        self.store = store
        #: Per-batch wall-clock budget in seconds (``None`` = unbounded).
        #: Release groups not *started* before the budget runs out fail
        #: with a deadline-exceeded error instead of executing.
        self.request_deadline = request_deadline
        self.cache_size = int(cache_size)
        self.memo_size = int(memo_size)
        self.max_workers = int(max_workers)
        self.memoize = bool(memoize)
        self.metrics = metrics or MetricsRegistry()
        self.planner = QueryPlanner()
        self._lock = threading.RLock()
        self.tiers = TieredArtifactCache(
            store, hot_size=cache_size, warm_size=warm_size,
            metrics=self.metrics,
        )
        self._memo: "OrderedDict[Tuple[str, str], QueryResult]" = OrderedDict()
        self._resolved: Dict[str, str] = {}
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- artifact access -----------------------------------------------------
    def resolve(self, prefix: str) -> str:
        """Expand a spec-hash prefix to a full hash (cached).

        Resolutions are remembered, so steady-state traffic never
        re-globs the store directory; unknown or ambiguous prefixes
        raise :class:`~repro.exceptions.QueryError` (from the store).
        """
        with self._lock:
            cached = self._resolved.get(prefix)
        if cached is not None:
            return cached
        full = self.store.resolve(prefix)
        with self._lock:
            self._resolved[prefix] = full
        return full

    def release(self, spec_hash: str) -> Release:
        """The decoded artifact for a full spec hash, via the tiers.

        Hot hits return a decoded release from memory; warm hits re-wrap
        an open mmap; only cold accesses touch the disk — and do so
        under a per-hash lock, so concurrent requests for one cold
        release perform exactly one open/decode.
        """
        return self.tiers.get(spec_hash)

    def cached_releases(self) -> List[str]:
        """Hashes currently hot, least- to most-recently used."""
        return self.tiers.hot_hashes()

    # -- request execution ---------------------------------------------------
    def execute(self, spec: QuerySpec) -> QueryResult:
        """Answer one request (counted and timed like a 1-element batch)."""
        return self.execute_batch([spec])[0]

    def execute_batch(
        self, specs: Sequence[QuerySpec], concurrent: bool = False
    ) -> List[QueryResult]:
        """Answer a batch, one shared pass per distinct target release.

        With ``concurrent=True``, release groups fan out across the
        engine's thread pool (useful when several cold releases must be
        decoded); results always come back in request order.
        """
        deadline = Deadline.start(self.request_deadline)
        with stage("plan"):
            plan = self.planner.plan(specs, self.resolve)
        results: Dict[int, QueryResult] = dict(plan.failures)
        for _ in plan.failures:
            self.metrics.record_request(0.0, error=True)

        groups = list(plan.groups.items())
        if self.request_deadline is not None:
            started: List[Tuple[str, Sequence[Tuple[int, QuerySpec]]]] = []
            for spec_hash, items in groups:
                if deadline.expired():
                    message = (
                        f"request deadline of {self.request_deadline:g}s "
                        "exceeded before this release group started"
                    )
                    for position, spec in items:
                        results[position] = QueryResult(
                            spec=spec, error=message, release=spec_hash,
                        )
                        self.metrics.record_request(0.0, error=True)
                        self.metrics.record_deadline_exceeded()
                else:
                    started.append((spec_hash, items))
            groups = started
        if concurrent and len(groups) > 1:
            # Worker threads never see the ambient timer (context
            # variables don't cross pool threads), so the fan-out is
            # timed as a whole from this submitting thread.
            with stage("answer"):
                futures = [
                    self.pool.submit(
                        self._execute_release_group, spec_hash, items
                    )
                    for spec_hash, items in groups
                ]
                for future in futures:
                    results.update(future.result())
        else:
            with stage("answer"):
                for spec_hash, items in groups:
                    results.update(
                        self._execute_release_group(spec_hash, items)
                    )
        self.metrics.record_batch()
        return [results[position] for position in range(len(specs))]

    def _execute_release_group(
        self, spec_hash: str, items: Sequence[Tuple[int, QuerySpec]]
    ) -> Dict[int, QueryResult]:
        """One release's share of a batch: memo partition, then kernels."""
        start = time.perf_counter()
        results: Dict[int, QueryResult] = {}
        try:
            release = self.release(spec_hash)
        except ReproError as error:
            for position, spec in items:
                results[position] = QueryResult(
                    spec=spec, error=str(error), release=spec_hash,
                )
            self._record_group(results, start)
            return results

        fresh: List[Tuple[int, QuerySpec]] = []
        for position, spec in items:
            memoized = self._memo_get(spec_hash, spec)
            if memoized is not None:
                results[position] = memoized
                self.metrics.record_memo_hit()
            else:
                fresh.append((position, spec))
        if fresh:
            computed = execute_group(release, fresh, release_hash=spec_hash)
            for position, spec in fresh:
                self._memo_put(spec_hash, spec, computed[position])
            results.update(computed)
        self._record_group(results, start)
        return results

    def _record_group(
        self, results: Dict[int, QueryResult], start: float
    ) -> None:
        # Shared passes answer the whole group at once, so each request
        # is charged its amortized share of the group's wall time; the
        # full group duration is passed along so the QPS window spans
        # the pass itself, not the amortized slivers.
        if not results:
            return
        elapsed = time.perf_counter() - start
        amortized = elapsed / len(results)
        for result in results.values():
            self.metrics.record_request(
                amortized, error=not result.ok, span_seconds=elapsed,
            )

    # -- memoization ---------------------------------------------------------
    def _memo_get(
        self, spec_hash: str, spec: QuerySpec
    ) -> Optional[QueryResult]:
        if not self.memoize:
            return None
        key = (spec_hash, spec.result_key())
        with self._lock:
            hit = self._memo.get(key)
            if hit is None:
                return None
            self._memo.move_to_end(key)
        # Results are frozen; re-wrap so the answer reports *this*
        # request's spec (prefixes may differ between callers).
        return QueryResult(
            spec=spec, value=hit.value, error=hit.error, release=spec_hash,
        )

    def _memo_put(
        self, spec_hash: str, spec: QuerySpec, result: QueryResult
    ) -> None:
        if not self.memoize:
            return
        key = (spec_hash, spec.result_key())
        with self._lock:
            self._memo[key] = result
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)

    # -- thread-pool path ----------------------------------------------------
    @property
    def pool(self) -> ThreadPoolExecutor:
        """The lazily created request thread pool."""
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-serve",
                )
            return self._pool

    def submit(self, spec: QuerySpec) -> "Future[QueryResult]":
        """Queue one request on the thread pool; returns its future."""
        return self.pool.submit(self.execute, spec)

    def submit_batch(
        self, specs: Sequence[QuerySpec]
    ) -> "Future[List[QueryResult]]":
        """Queue a whole batch on the thread pool."""
        return self.pool.submit(self.execute_batch, specs)

    def close(self) -> None:
        """Shut the thread pool down and drop the in-memory tiers
        (idempotent; warm mmaps are closed)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self.tiers.clear()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServingEngine({self.store!r}, cache={len(self.cached_releases())}"
            f"/{self.cache_size}, workers={self.max_workers})"
        )
