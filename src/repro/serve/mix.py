"""Synthetic request mixes: zipfian release popularity, configurable queries.

Serving benchmarks need traffic that looks like traffic: a few releases
take most of the requests (the hot cache's reason to exist), the rest
form a long tail, and the queries themselves mix cheap scalars with
order statistics and range scans.  This module generates such a mix
deterministically:

* **Release popularity** follows the same Zipf profile
  (``rank^-skew``) the workload generator uses to skew sibling group
  allocations (:func:`repro.workloads.generator._child_allocation`);
  ``popularity_skew=0`` is uniform traffic, ``1.1`` a realistic heavy
  head.
* **Query mix** is a ``{query name: weight}`` mapping over the release
  query surface (:data:`DEFAULT_QUERY_MIX` covers all of it).
* **Parameters** are drawn valid against a catalog of the store's
  actual releases (ranks within ``[1, G]``, bounds within the histogram
  support), so a generated mix exercises the serving path, not the
  error path.

Seeding mirrors the rest of the codebase: one
:func:`repro.engine.grid.stable_seed_sequence` over ``(tag, seed)``, so
the same store contents + seed reproduce the same request log
bit-for-bit (see :mod:`repro.serve.requestlog`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.api.store import ReleaseStore
from repro.engine.grid import stable_seed_sequence
from repro.exceptions import QueryError
from repro.serve.spec import QuerySpec

#: Default query mix: order statistics dominate (the paper's headline
#: consumer questions), with a tail of range scans and skew summaries.
DEFAULT_QUERY_MIX: Dict[str, float] = {
    "kth_smallest_group": 2.0,
    "kth_largest_group": 2.0,
    "size_quantile": 2.0,
    "groups_with_size_at_least": 1.0,
    "groups_with_size_between": 1.0,
    "entities_in_groups_of_size_between": 0.5,
    "mean_group_size": 0.5,
    "gini_coefficient": 0.5,
    "top_share": 1.0,
}

#: Spec-hash prefix length generated requests address releases with
#: (exercises the store's prefix resolution; 12 hex chars ≈ collision-free
#: for any realistic store).
PREFIX_LENGTH = 12

#: Per-node facts the parameter draws need: (num_groups, num_entities,
#: histogram length).
NodeFacts = Tuple[int, int, int]


def zipfian_weights(count: int, skew: float) -> np.ndarray:
    """Normalized ``rank^-skew`` popularity weights (rank 1 first).

    The same profile the workload generator skews sibling allocations
    with; ``skew=0`` is uniform.

    Examples
    --------
    >>> weights = zipfian_weights(4, 1.0)
    >>> bool(weights[0] > weights[-1]), bool(abs(weights.sum() - 1) < 1e-12)
    (True, True)
    """
    if count < 1:
        raise QueryError(f"need at least one release, got {count}")
    if not skew >= 0:
        raise QueryError(f"popularity skew must be >= 0, got {skew}")
    weights = np.arange(1, count + 1, dtype=np.float64) ** -float(skew)
    return weights / weights.sum()


def catalog_store(store: ReleaseStore) -> Dict[str, Dict[str, NodeFacts]]:
    """Per-release, per-node facts for parameter drawing.

    Decodes each artifact once (generation-time work, outside any timed
    serving path) and keeps only nodes with at least one entity — the
    support every query in the mix is well-defined on.
    """
    catalog: Dict[str, Dict[str, NodeFacts]] = {}
    for release in store.releases():
        nodes: Dict[str, NodeFacts] = {}
        for name in release.node_names():
            histogram = release.node(name)
            if histogram.num_entities > 0:
                nodes[name] = (
                    histogram.num_groups,
                    histogram.num_entities,
                    len(histogram),
                )
        if nodes:
            catalog[release.provenance.spec_hash] = nodes
    if not catalog:
        raise QueryError(
            f"store {store.directory} holds no queryable releases "
            "(every node is empty)"
        )
    return catalog


def _draw_params(
    query: str, facts: NodeFacts, rng: np.random.Generator
) -> Dict[str, object]:
    """Valid parameters for one request against a node's facts."""
    num_groups, _, length = facts
    if query in ("kth_smallest_group", "kth_largest_group"):
        return {"k": int(rng.integers(1, num_groups + 1))}
    if query == "size_quantile":
        return {"quantile": round(float(rng.random()), 4)}
    if query == "groups_with_size_at_least":
        return {"size": int(rng.integers(0, length + 1))}
    if query in (
        "groups_with_size_between", "entities_in_groups_of_size_between"
    ):
        bounds = np.sort(rng.integers(0, length + 1, size=2))
        return {"low": int(bounds[0]), "high": int(bounds[1])}
    if query == "top_share":
        # floor to 4 decimals, then clamp into (0, 1].
        return {"fraction": min(max(round(float(rng.random()), 4), 1e-4), 1.0)}
    return {}  # mean_group_size / gini_coefficient take no parameters


def generate_requests(
    store: ReleaseStore,
    num_requests: int,
    seed: int = 0,
    popularity_skew: float = 1.1,
    query_mix: Optional[Mapping[str, float]] = None,
    catalog: Optional[Dict[str, Dict[str, NodeFacts]]] = None,
    prefix_length: int = PREFIX_LENGTH,
) -> List[QuerySpec]:
    """A deterministic, replayable request mix against ``store``.

    Popularity rank follows sorted spec-hash order (deterministic for a
    given store); pass ``catalog`` to skip re-decoding when generating
    several mixes against one store.

    Examples
    --------
    Determinism: same store + seed → identical requests.
    """
    if num_requests < 1:
        raise QueryError(f"num_requests must be >= 1, got {num_requests}")
    mix = dict(query_mix) if query_mix is not None else dict(DEFAULT_QUERY_MIX)
    if not mix:
        raise QueryError("query mix must name at least one query")
    queries = sorted(mix)
    query_weights = np.asarray([float(mix[q]) for q in queries])
    if np.any(query_weights < 0) or query_weights.sum() <= 0:
        raise QueryError(f"query mix weights must be >= 0 and not all zero, "
                         f"got {mix}")
    query_weights = query_weights / query_weights.sum()

    if catalog is None:
        catalog = catalog_store(store)
    hashes = sorted(catalog)
    weights = zipfian_weights(len(hashes), popularity_skew)
    rng = np.random.default_rng(
        stable_seed_sequence("serve-mix", int(seed), len(hashes))
    )

    release_draws = rng.choice(len(hashes), size=num_requests, p=weights)
    query_draws = rng.choice(len(queries), size=num_requests, p=query_weights)
    requests: List[QuerySpec] = []
    for release_index, query_index in zip(release_draws, query_draws):
        spec_hash = hashes[release_index]
        nodes = catalog[spec_hash]
        names = sorted(nodes)
        node = names[int(rng.integers(len(names)))]
        query = queries[query_index]
        requests.append(QuerySpec.create(
            spec_hash[:prefix_length], query, node,
            **_draw_params(query, nodes[node], rng),
        ))
    return requests
