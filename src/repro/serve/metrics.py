"""Serving metrics: counters, latency percentiles, QPS.

A :class:`MetricsRegistry` is the observability surface of the serving
engine — the numbers the ``serve bench`` table and ``BENCH_serving.json``
are built from.  Everything is guarded by one lock, so recording from
the engine's thread pool is safe; reads (:meth:`MetricsRegistry.snapshot`)
take a consistent view.

Latencies are kept as raw samples up to a bounded reservoir size (new
samples beyond the bound are dropped, never silently subsampled — the
bound is far above any realistic bench run and the snapshot reports how
many samples were kept).  Percentiles are computed on demand with
``numpy.percentile`` over the reservoir.

The QPS window runs from the *start* of the earliest recorded work
(batched requests carry their shared pass's full wall time as the span)
to the *end* of the latest, so a single large batch reports its true
sustained rate rather than the near-zero span between completions.

Snapshots are **mergeable**: :meth:`MetricsRegistry.snapshot` with
``include_samples=True`` additionally carries the raw latency reservoir
and the absolute window bounds (``time.perf_counter`` is system-wide, so
bounds from different processes on one host share a clock), and
:func:`merge_snapshots` recombines any number of such snapshots into one
cluster-wide view — counts summed, percentiles recomputed over the
pooled samples, QPS over the union window.  The sharded serving tier
(:mod:`repro.serve.cluster`) aggregates its per-worker registries this
way instead of ad-hoc arithmetic.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

#: Reported latency percentiles (milliseconds in snapshots and tables).
PERCENTILES = (50, 95, 99)

#: Default cap on retained latency samples.
DEFAULT_MAX_SAMPLES = 200_000


class MetricsRegistry:
    """Thread-safe request/cache/latency counters for a serving engine.

    Examples
    --------
    >>> metrics = MetricsRegistry()
    >>> metrics.record_request(0.002)
    >>> metrics.record_request(0.004, error=True)
    >>> snapshot = metrics.snapshot()
    >>> snapshot["requests"], snapshot["errors"]
    (2, 1)
    >>> snapshot["latency_ms"]["p50"] > 0
    True
    """

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        self.max_samples = int(max_samples)
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Zero every counter and drop all latency samples."""
        with self._lock:
            self._requests = 0
            self._errors = 0
            self._batches = 0
            self._artifact_loads = 0
            self._cache_hits = 0
            self._warm_hits = 0
            self._cache_misses = 0
            self._memo_hits = 0
            self._retries = 0
            self._deadline_exceeded = 0
            self._breaker_trips = 0
            self._fallback_requests = 0
            self._integrity_failures = 0
            self._heartbeat_timeouts = 0
            self._latencies: List[float] = []
            self._window_start: Optional[float] = None
            self._window_end: Optional[float] = None

    # -- recording ----------------------------------------------------------
    def record_request(
        self,
        seconds: float,
        error: bool = False,
        span_seconds: Optional[float] = None,
    ) -> None:
        """One answered request that took ``seconds``.

        For requests answered inside a shared batch pass, ``seconds`` is
        the amortized share of the pass and ``span_seconds`` must carry
        the full wall time of the pass: the QPS window then extends back
        to when the *pass* started, not the amortized sliver, so a
        single large batch reports its true sustained rate.
        """
        now = time.perf_counter()
        seconds = max(float(seconds), 0.0)
        span = seconds if span_seconds is None else max(float(span_seconds), 0.0)
        with self._lock:
            self._requests += 1
            if error:
                self._errors += 1
            if len(self._latencies) < self.max_samples:
                self._latencies.append(seconds)
            started = now - span
            if self._window_start is None or started < self._window_start:
                self._window_start = started
            if self._window_end is None or now > self._window_end:
                self._window_end = now

    def record_batch(self) -> None:
        with self._lock:
            self._batches += 1

    def record_artifact_load(self) -> None:
        """One artifact decoded from the store (the expensive event the
        hot cache exists to eliminate)."""
        with self._lock:
            self._artifact_loads += 1

    def record_cache_hit(self) -> None:
        """One **hot**-tier hit (decoded release served from memory)."""
        with self._lock:
            self._cache_hits += 1

    def record_warm_hit(self) -> None:
        """One **warm**-tier hit (release re-wrapped from an open mmap
        after falling out of the hot tier)."""
        with self._lock:
            self._warm_hits += 1

    def record_cache_miss(self) -> None:
        """One full miss — neither tier held the hash (cold access)."""
        with self._lock:
            self._cache_misses += 1

    def record_memo_hit(self) -> None:
        with self._lock:
            self._memo_hits += 1

    # -- resilience events ---------------------------------------------------
    def record_retry(self) -> None:
        """One dispatch attempt retried after a retryable failure."""
        with self._lock:
            self._retries += 1

    def record_deadline_exceeded(self) -> None:
        """One request failed because its deadline ran out."""
        with self._lock:
            self._deadline_exceeded += 1

    def record_breaker_trip(self) -> None:
        """One circuit breaker transitioned closed → open."""
        with self._lock:
            self._breaker_trips += 1

    def record_fallback_request(self) -> None:
        """One request served by the local fallback engine because its
        shard's breaker was open."""
        with self._lock:
            self._fallback_requests += 1

    def record_integrity_failure(self) -> None:
        """One artifact failed its checksums (quarantine path taken)."""
        with self._lock:
            self._integrity_failures += 1

    def record_heartbeat_timeout(self) -> None:
        """One worker declared hung after missing its heartbeat budget."""
        with self._lock:
            self._heartbeat_timeouts += 1

    # -- derived views -------------------------------------------------------
    def cache_hit_ratio(self) -> float:
        """In-memory (hot + warm) hits / lookups (0.0 before any lookup).

        Both tiers avoid the disk, so both count as hits; only a cold
        access is a miss.
        """
        with self._lock:
            hits = self._cache_hits + self._warm_hits
            lookups = hits + self._cache_misses
            return hits / lookups if lookups else 0.0

    def qps(self) -> float:
        """Requests per second over the observed window (0.0 when empty)."""
        with self._lock:
            return self._qps_locked()

    def _qps_locked(self) -> float:
        if not self._requests or self._window_start is None:
            return 0.0
        span = max(self._window_end - self._window_start, 1e-9)
        return self._requests / span

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 plus mean/max, in milliseconds (zeros when empty)."""
        with self._lock:
            samples = np.asarray(self._latencies, dtype=np.float64)
        if samples.size == 0:
            return {
                **{f"p{p}": 0.0 for p in PERCENTILES},
                "mean": 0.0, "max": 0.0,
            }
        points = np.percentile(samples, PERCENTILES)
        report = {
            f"p{p}": float(value) * 1e3
            for p, value in zip(PERCENTILES, points)
        }
        report["mean"] = float(samples.mean()) * 1e3
        report["max"] = float(samples.max()) * 1e3
        return report

    def snapshot(self, include_samples: bool = False) -> Dict[str, object]:
        """A consistent, JSON-ready view with a stable key set.

        With ``include_samples`` the snapshot additionally carries the
        raw latency reservoir (``"samples"``, seconds) and the absolute
        window bounds (``"window_start"``/``"window_end"``,
        ``time.perf_counter`` values) — everything
        :func:`merge_snapshots` needs to recombine registries exactly.
        The default key set is unchanged either way.
        """
        latency = self.latency_percentiles()
        with self._lock:
            hits = self._cache_hits + self._warm_hits
            lookups = hits + self._cache_misses
            window = (
                self._window_end - self._window_start
                if self._window_start is not None else 0.0
            )
            view: Dict[str, object] = {
                "requests": self._requests,
                "errors": self._errors,
                "batches": self._batches,
                "artifact_loads": self._artifact_loads,
                "cache_hits": self._cache_hits,
                "warm_hits": self._warm_hits,
                "cache_misses": self._cache_misses,
                "cache_hit_ratio": hits / lookups if lookups else 0.0,
                "memo_hits": self._memo_hits,
                "retries": self._retries,
                "deadline_exceeded": self._deadline_exceeded,
                "breaker_trips": self._breaker_trips,
                "fallback_requests": self._fallback_requests,
                "integrity_failures": self._integrity_failures,
                "heartbeat_timeouts": self._heartbeat_timeouts,
                "qps": self._qps_locked(),
                "window_seconds": float(window),
                "latency_samples": len(self._latencies),
                "latency_ms": latency,
            }
            if include_samples:
                view["samples"] = list(self._latencies)
                view["window_start"] = self._window_start
                view["window_end"] = self._window_end
            return view

    def format_table(self) -> str:
        """The aligned text table ``serve bench`` / ``serve exec`` print."""
        return format_snapshot_table(self.snapshot())

    def __repr__(self) -> str:
        snapshot = self.snapshot()
        return (
            f"MetricsRegistry(requests={snapshot['requests']}, "
            f"errors={snapshot['errors']}, "
            f"loads={snapshot['artifact_loads']})"
        )


def format_snapshot_table(
    snapshot: Mapping[str, object], title: str = "serving metrics"
) -> str:
    """The aligned metrics table for any snapshot-shaped mapping.

    Works on a live registry's :meth:`MetricsRegistry.snapshot` and on
    a :func:`merge_snapshots` aggregate alike — the cluster CLI prints
    its merged view through the same table as the single-process path.
    """
    latency = snapshot["latency_ms"]
    rows = [
        ("requests", f"{snapshot['requests']:,}"),
        ("errors", f"{snapshot['errors']:,}"),
        ("batches", f"{snapshot['batches']:,}"),
        ("qps", f"{snapshot['qps']:,.0f}"),
        ("artifact loads", f"{snapshot['artifact_loads']:,}"),
        ("cache hit ratio", f"{snapshot['cache_hit_ratio']:.3f}"),
        ("warm hits", f"{snapshot['warm_hits']:,}"),
        ("memo hits", f"{snapshot['memo_hits']:,}"),
        ("retries", f"{snapshot.get('retries', 0):,}"),
        ("deadline exceeded", f"{snapshot.get('deadline_exceeded', 0):,}"),
        ("fallback requests", f"{snapshot.get('fallback_requests', 0):,}"),
        ("latency p50", f"{latency['p50']:.3f} ms"),
        ("latency p95", f"{latency['p95']:.3f} ms"),
        ("latency p99", f"{latency['p99']:.3f} ms"),
        ("latency mean", f"{latency['mean']:.3f} ms"),
    ]
    width = max(len(label) for label, _ in rows)
    lines = [title]
    lines += [f"  {label:<{width}}  {value}" for label, value in rows]
    return "\n".join(lines)


#: The counter keys :func:`merge_snapshots` sums across inputs.
_MERGE_COUNTER_KEYS = (
    "requests", "errors", "batches", "artifact_loads", "cache_hits",
    "warm_hits", "cache_misses", "memo_hits", "retries",
    "deadline_exceeded", "breaker_trips", "fallback_requests",
    "integrity_failures", "heartbeat_timeouts",
)


def merge_snapshots(
    snapshots: Sequence[Mapping[str, object]],
    max_samples: int = DEFAULT_MAX_SAMPLES,
) -> Dict[str, object]:
    """Combine registry snapshots into one aggregate snapshot (pure).

    The input snapshots come from :meth:`MetricsRegistry.snapshot` — one
    per serving engine, e.g. one per cluster worker process.  Counters
    are summed, the cache hit ratio is recomputed from the summed tier
    counters, and latency percentiles are recomputed over the **pooled
    raw samples** of every sample-bearing snapshot (pass
    ``include_samples=True`` when taking them) rather than averaging
    per-shard percentiles, which would be statistically meaningless.

    The QPS window is the union of the inputs' absolute windows when
    every busy snapshot carries its bounds (``time.perf_counter`` is
    system-wide, so bounds from different processes on one host are
    directly comparable); snapshots without bounds fall back to the
    widest single window.  Aggregate QPS is total requests over that
    window — concurrent workers therefore add throughput instead of
    averaging it.

    The result has exactly the stable key set of
    :meth:`MetricsRegistry.snapshot` (no raw samples), so cluster-wide
    and per-engine snapshots are interchangeable downstream.  An empty
    input merges to the zeroed snapshot of a fresh registry.

    Examples
    --------
    >>> a, b = MetricsRegistry(), MetricsRegistry()
    >>> a.record_request(0.002)
    >>> b.record_request(0.004, error=True)
    >>> merged = merge_snapshots([a.snapshot(include_samples=True),
    ...                           b.snapshot(include_samples=True)])
    >>> merged["requests"], merged["errors"], merged["latency_samples"]
    (2, 1, 2)
    """
    totals: Dict[str, int] = {key: 0 for key in _MERGE_COUNTER_KEYS}
    samples: List[float] = []
    window_start: Optional[float] = None
    window_end: Optional[float] = None
    widest_window = 0.0
    bounds_complete = True
    for snapshot in snapshots:
        for key in _MERGE_COUNTER_KEYS:
            totals[key] += int(snapshot.get(key, 0))  # type: ignore[arg-type]
        samples.extend(float(s) for s in snapshot.get("samples", ()))  # type: ignore[union-attr]
        widest_window = max(
            widest_window, float(snapshot.get("window_seconds", 0.0))  # type: ignore[arg-type]
        )
        start = snapshot.get("window_start")
        end = snapshot.get("window_end")
        if start is None or end is None:
            if int(snapshot.get("requests", 0)) > 0:  # type: ignore[arg-type]
                bounds_complete = False
            continue
        start, end = float(start), float(end)  # type: ignore[arg-type]
        window_start = start if window_start is None else min(window_start, start)
        window_end = end if window_end is None else max(window_end, end)

    if bounds_complete and window_start is not None and window_end is not None:
        window = max(window_end - window_start, 0.0)
    else:
        window = widest_window
    requests = totals["requests"]
    qps = requests / max(window, 1e-9) if requests else 0.0

    del samples[max_samples:]
    pooled = np.asarray(samples, dtype=np.float64)
    if pooled.size:
        points = np.percentile(pooled, PERCENTILES)
        latency = {
            f"p{p}": float(value) * 1e3
            for p, value in zip(PERCENTILES, points)
        }
        latency["mean"] = float(pooled.mean()) * 1e3
        latency["max"] = float(pooled.max()) * 1e3
    else:
        latency = {
            **{f"p{p}": 0.0 for p in PERCENTILES}, "mean": 0.0, "max": 0.0,
        }

    hits = totals["cache_hits"] + totals["warm_hits"]
    lookups = hits + totals["cache_misses"]
    return {
        **totals,
        "cache_hit_ratio": hits / lookups if lookups else 0.0,
        "qps": qps,
        "window_seconds": float(window),
        "latency_samples": int(pooled.size),
        "latency_ms": latency,
    }
