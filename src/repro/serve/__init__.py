"""Concurrent query serving over the release store.

The paper's end product is an artifact consumers *query* — "what is the
size of the k-th largest group?", skewness, range counts.  This package
is the serving side of that product: declarative
:class:`~repro.serve.spec.QuerySpec` requests, compiled by the
:class:`~repro.serve.planner.QueryPlanner` into per-release batched
plans, executed by a thread-safe
:class:`~repro.serve.engine.ServingEngine` with a FOCUS-style
three-tier artifact cache (:class:`~repro.serve.tiers.TieredArtifactCache`:
hot decoded releases / warm open mmaps / cold files), result
memoization, and full metrics — plus the replayable request-log format,
the zipfian request-mix generator and the naive-vs-served benchmark
harness behind ``repro serve bench``.

Past one process, the :mod:`repro.serve.cluster` subpackage shards the
store across ``multiprocessing`` workers — each running its own
``ServingEngine`` over mmap'd columnar artifacts whose pages the OS
shares between processes — behind a
:class:`~repro.serve.cluster.engine.ClusterEngine` with the same
request API.

Data flow::

    ReleaseStore ──► TieredArtifactCache ──► ServingEngine (+ memo, pool)
     (json / v3)    (hot ▸ warm ▸ cold)          ▲
    QuerySpec batch ──► QueryPlanner (group by release, shared passes)
                          │
                          ▼
    QueryResult stream + MetricsRegistry (QPS, tier hits, p50/p95/p99)
"""

from repro.serve.bench import (
    BenchReport,
    answers_match,
    bench_specs,
    columnar_twin,
    populate_bench_store,
    run_benchmark,
    run_cold_pass,
    run_naive,
    run_served,
)
from repro.serve.cluster import ClusterEngine, ShardRouter, run_sharded_bench
from repro.serve.engine import ServingEngine
from repro.serve.metrics import MetricsRegistry, merge_snapshots
from repro.serve.mix import (
    DEFAULT_QUERY_MIX,
    catalog_store,
    generate_requests,
    zipfian_weights,
)
from repro.serve.planner import QueryPlan, QueryPlanner, QueryResult, execute_group
from repro.serve.requestlog import (
    dump_request,
    load_requests,
    parse_requests,
    save_requests,
)
from repro.serve.spec import QUERY_PARAMETERS, QuerySpec
from repro.serve.tiers import DEFAULT_WARM_SIZE, TieredArtifactCache

__all__ = [
    "BenchReport",
    "ClusterEngine",
    "DEFAULT_QUERY_MIX",
    "DEFAULT_WARM_SIZE",
    "ShardRouter",
    "TieredArtifactCache",
    "MetricsRegistry",
    "merge_snapshots",
    "QUERY_PARAMETERS",
    "QueryPlan",
    "QueryPlanner",
    "QueryResult",
    "QuerySpec",
    "ServingEngine",
    "answers_match",
    "bench_specs",
    "catalog_store",
    "columnar_twin",
    "dump_request",
    "execute_group",
    "generate_requests",
    "load_requests",
    "parse_requests",
    "populate_bench_store",
    "run_benchmark",
    "run_cold_pass",
    "run_naive",
    "run_served",
    "run_sharded_bench",
    "save_requests",
    "zipfian_weights",
]
