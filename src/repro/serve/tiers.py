"""FOCUS-style three-tier artifact cache: hot decoded / warm mmap / cold file.

FOCUS (PAPERS.md) manages hierarchical data with tiered access paths so
the common case never pays the rare case's cost.  The serving engine's
artifact access has exactly that shape, so this module replaces its
single decoded-release LRU with three tiers:

``hot``
    Fully decoded :class:`~repro.api.release.Release` objects — zero
    work per query.  Bounded LRU, same as the old cache.
``warm``
    Open :class:`~repro.io.columnar.ColumnarReader` mmaps.  A release
    evicted from hot silently *demotes* here: re-promotion is a
    zero-copy re-wrap of the mapped columns (microseconds), not a JSON
    decode (milliseconds).  Bounded LRU; eviction closes the mmap.
``cold``
    The artifact file on disk.  A cold lookup mmap-opens the columnar
    artifact (zero parse) when the store has one, and falls back to the
    JSON decode path otherwise — JSON-only stores behave exactly as
    before, just routed through the tier bookkeeping.

Concurrency: every cold open / warm promotion of one hash runs under a
per-hash lock, so N threads racing on the same cold artifact perform
exactly **one** mmap open and share the mapping (mirroring the store's
``get_or_build`` build-once lock).  Different hashes never block each
other; hot hits never lock beyond the cache's own mutex.

Staleness: a warm mmap can outlive its file — ``store migrate`` unlinks
the columnar artifact after converting it, and an operator can delete
one outright.  The mapping itself stays readable (the kernel keeps the
unlinked inode alive), but serving from it would silently pin bytes the
store no longer vouches for.  Every warm promotion therefore revalidates
the entry against the file's current identity (inode / size / mtime,
captured at open time): a mismatch **evicts** the reader and falls
through to a fresh cold open, which re-opens whatever artifact the store
holds now — or raises the store's clear "no artifact" error when the
hash is truly gone.  Hot entries are plain decoded values (both formats
are lossless, so a decoded release stays correct across migration) and
need no such check.

Per-tier hits land in the engine's
:class:`~repro.serve.metrics.MetricsRegistry`: ``cache_hits`` (hot),
``warm_hits``, ``cache_misses`` (cold), ``artifact_loads`` (actual disk
decodes/opens — the number the tiers exist to minimize).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.release import Release
from repro.api.store import ReleaseStore
from repro.exceptions import IntegrityError, ReproError
from repro.io.columnar import ColumnarReader
from repro.serve.metrics import MetricsRegistry

#: Default number of open mmap readers kept warm (the warm tier is far
#: cheaper per entry than hot — an open fd + page-cache residency — so
#: it defaults wider than the hot tier).
DEFAULT_WARM_SIZE = 128


@dataclass
class _WarmEntry:
    """One warm-tier slot: the open reader plus the file identity it
    mapped, so later promotions can detect the file changing or
    vanishing underneath the mapping."""

    reader: ColumnarReader
    token: Tuple[int, int, int]


def _file_token(path: "os.PathLike") -> Tuple[int, int, int]:
    """The identity triple a warm entry is validated against."""
    status = os.stat(path)
    return (status.st_ino, status.st_size, status.st_mtime_ns)


class TieredArtifactCache:
    """Hot/warm/cold artifact access for one release store.

    Examples
    --------
    >>> import tempfile
    >>> from repro.api.spec import ReleaseSpec
    >>> store = ReleaseStore(tempfile.mkdtemp(), write_format="columnar")
    >>> release = store.get_or_build(
    ...     ReleaseSpec.create("hawaiian", epsilon=2.0, max_size=200))
    >>> cache = TieredArtifactCache(store, hot_size=4)
    >>> spec_hash = release.provenance.spec_hash
    >>> cache.get(spec_hash).to_json() == release.to_json()   # cold open
    True
    >>> cache.hot_hashes() == [spec_hash] == cache.warm_hashes()
    True
    >>> _ = cache.get(spec_hash)                              # hot hit
    >>> cache.metrics.snapshot()["cache_hits"]
    1
    """

    def __init__(
        self,
        store: ReleaseStore,
        hot_size: int,
        warm_size: int = DEFAULT_WARM_SIZE,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if hot_size < 1:
            raise ReproError(f"hot_size must be >= 1, got {hot_size}")
        if warm_size < 1:
            raise ReproError(f"warm_size must be >= 1, got {warm_size}")
        self.store = store
        self.hot_size = int(hot_size)
        self.warm_size = int(warm_size)
        self.metrics = metrics or MetricsRegistry()
        self._lock = threading.Lock()
        self._hot: "OrderedDict[str, Release]" = OrderedDict()
        self._warm: "OrderedDict[str, _WarmEntry]" = OrderedDict()
        # Per-hash open locks: concurrent cold/warm lookups of one hash
        # open and decode exactly once; other hashes proceed in parallel.
        self._open_locks: Dict[str, threading.Lock] = {}

    def _open_lock(self, spec_hash: str) -> threading.Lock:
        with self._lock:
            return self._open_locks.setdefault(spec_hash, threading.Lock())

    # -- lookups -------------------------------------------------------------
    def get(self, spec_hash: str) -> Release:
        """The decoded release for a full spec hash, via the tiers.

        Raises :class:`ReproError` when the hash is not in the store.
        """
        with self._lock:
            hot = self._hot.get(spec_hash)
            if hot is not None:
                self._hot.move_to_end(spec_hash)
                self.metrics.record_cache_hit()
                return hot
        with self._open_lock(spec_hash):
            # Double-checked: a racing thread may have finished the cold
            # open / promotion while this one waited on the hash's lock.
            with self._lock:
                hot = self._hot.get(spec_hash)
                if hot is not None:
                    self._hot.move_to_end(spec_hash)
                    self.metrics.record_cache_hit()
                    return hot
                entry = self._warm.get(spec_hash)
                if entry is not None:
                    self._warm.move_to_end(spec_hash)
            if entry is not None:
                if self._warm_entry_stale(entry):
                    # The artifact was migrated or deleted underneath
                    # the mapping: evict instead of serving stale pages,
                    # then re-open whatever the store holds now.
                    self._evict_warm(spec_hash, entry)
                else:
                    try:
                        # Promotion re-verifies the mapped bytes: an
                        # in-place corruption shows through the shared
                        # mapping, and serving it hot would poison every
                        # later request for this hash.
                        entry.reader.verify_checksums()
                    except IntegrityError:
                        self.metrics.record_integrity_failure()
                        self._evict_warm(spec_hash, entry)
                    else:
                        # Warm hit: zero-copy re-wrap of the open mmap.
                        self.metrics.record_warm_hit()
                        return self._admit_hot(
                            spec_hash, entry.reader.to_release()
                        )
            self.metrics.record_cache_miss()
            return self._cold_open(spec_hash)

    @staticmethod
    def _warm_entry_stale(entry: _WarmEntry) -> bool:
        """True when the mapped file no longer matches what was opened."""
        try:
            return _file_token(entry.reader.path) != entry.token
        except OSError:
            return True

    def _evict_warm(self, spec_hash: str, entry: _WarmEntry) -> None:
        with self._lock:
            current = self._warm.get(spec_hash)
            if current is entry:
                del self._warm[spec_hash]
        entry.reader.close()

    def _cold_open(self, spec_hash: str) -> Release:
        """Tier-3 access: mmap the columnar artifact, or JSON-decode.

        The store verifies checksums on open (and quarantines + rebuilds
        corrupt artifacts when healing is on); detections are mirrored
        into this engine's metrics so cluster-wide snapshots carry them.
        """
        if self.store.artifact_format(spec_hash) == "columnar":
            failures_before = self.store.integrity_failures
            reader = self.store.open_columnar(spec_hash)
            if self.store.integrity_failures > failures_before:
                self.metrics.record_integrity_failure()
            try:
                token = _file_token(reader.path)
            except OSError as error:
                reader.close()
                raise ReproError(
                    f"columnar artifact for {spec_hash[:16]}… vanished from "
                    f"{self.store.directory} while being opened: {error}"
                ) from None
            self.metrics.record_artifact_load()
            release = reader.to_release()
            with self._lock:
                self._warm[spec_hash] = _WarmEntry(reader, token)
                self._warm.move_to_end(spec_hash)
                while len(self._warm) > self.warm_size:
                    _, evicted = self._warm.popitem(last=False)
                    evicted.reader.close()
            return self._admit_hot(spec_hash, release)
        release = self.store.get(spec_hash)
        if release is None:
            raise ReproError(
                f"release {spec_hash[:16]}… vanished from "
                f"{self.store.directory}"
            )
        self.metrics.record_artifact_load()
        return self._admit_hot(spec_hash, release)

    def _admit_hot(self, spec_hash: str, release: Release) -> Release:
        # Hot eviction is *demotion*, not loss: a columnar-backed hash
        # keeps its open reader in the warm tier, so the next touch
        # re-wraps the mmap instead of re-reading the file.
        with self._lock:
            self._hot[spec_hash] = release
            self._hot.move_to_end(spec_hash)
            while len(self._hot) > self.hot_size:
                self._hot.popitem(last=False)
        return release

    # -- introspection -------------------------------------------------------
    def hot_hashes(self) -> List[str]:
        """Hashes currently hot, least- to most-recently used."""
        with self._lock:
            return list(self._hot)

    def warm_hashes(self) -> List[str]:
        """Hashes with an open mmap reader, least- to most-recently used."""
        with self._lock:
            return list(self._warm)

    def warm_reader(self, spec_hash: str) -> Optional[ColumnarReader]:
        """The open reader for a hash, or ``None`` (no LRU touch)."""
        with self._lock:
            entry = self._warm.get(spec_hash)
            return entry.reader if entry is not None else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._hot)

    def clear(self) -> None:
        """Drop both in-memory tiers, closing every warm mmap."""
        with self._lock:
            self._hot.clear()
            warm = list(self._warm.values())
            self._warm.clear()
        for entry in warm:
            entry.reader.close()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"TieredArtifactCache(hot={len(self._hot)}/{self.hot_size}, "
                f"warm={len(self._warm)}/{self.warm_size}, "
                f"store={self.store!r})"
            )
