"""The geometric mechanism of Ghosh, Roughgarden and Sundararajan.

The paper (Definition 3) adds *double-geometric* noise with scale
``sensitivity / epsilon`` to every component of an integer query answer:

    P(X = k)  =  (1 - a) / (1 + a) * a^|k|,      a = exp(-epsilon / sensitivity)

for every integer k.  This is the discrete analogue of the Laplace
distribution.  The paper prefers it to Laplace noise because

* query answers stay integers, which the count-of-counts problem requires;
* it has slightly lower variance at the same privacy level; and
* it avoids the floating-point side channel of naive Laplace samplers
  (Mironov, CCS 2012) since sampling is purely discrete.

Sampling uses the classic decomposition of a double-geometric variate as the
difference of two i.i.d. geometric variates, which is exact (no continuous
intermediate values).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import EstimationError

ArrayLike = Union[int, float, np.ndarray]


def _validate_scale(epsilon: float, sensitivity: float) -> float:
    """Return the noise parameter ``a = exp(-epsilon/sensitivity)``.

    Raises :class:`EstimationError` on nonpositive epsilon or sensitivity so
    misconfigured privacy parameters fail loudly instead of silently
    producing non-private output.
    """
    if not np.isfinite(epsilon) or epsilon <= 0:
        raise EstimationError(f"epsilon must be positive and finite, got {epsilon!r}")
    if not np.isfinite(sensitivity) or sensitivity <= 0:
        raise EstimationError(
            f"sensitivity must be positive and finite, got {sensitivity!r}"
        )
    return float(np.exp(-epsilon / sensitivity))


def double_geometric(
    size: Union[int, tuple],
    epsilon: float,
    sensitivity: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Draw double-geometric noise with scale ``sensitivity / epsilon``.

    Parameters
    ----------
    size:
        Output shape (as accepted by numpy).
    epsilon:
        Privacy loss budget allocated to this query.
    sensitivity:
        L1 global sensitivity of the query being protected.
    rng:
        Source of randomness; a fresh default generator is used when omitted.

    Returns
    -------
    numpy.ndarray of int64 noise values.

    Notes
    -----
    If G1, G2 are i.i.d. geometric with success probability ``1 - a`` and
    support {0, 1, 2, ...}, then G1 - G2 is double-geometric with parameter
    ``a``.  numpy's ``Generator.geometric`` uses support {1, 2, ...}, so we
    subtract 1 from each draw.
    """
    a = _validate_scale(epsilon, sensitivity)
    if rng is None:
        rng = np.random.default_rng()
    p = 1.0 - a
    g1 = rng.geometric(p, size=size).astype(np.int64) - 1
    g2 = rng.geometric(p, size=size).astype(np.int64) - 1
    return g1 - g2


def double_geometric_variance(epsilon: float, sensitivity: float = 1.0) -> float:
    """Exact variance of the double-geometric distribution.

    Var = 2a / (1 - a)^2 with a = exp(-epsilon/sensitivity).  The paper
    approximates this with the Laplace variance 2 * (sensitivity/epsilon)^2;
    both are exposed so the variance-estimation module can follow the paper
    exactly while tests can check the approximation quality.
    """
    a = _validate_scale(epsilon, sensitivity)
    return 2.0 * a / (1.0 - a) ** 2


class GeometricMechanism:
    """ε-differentially private integer noise for vector-valued queries.

    Instances are bound to an ``epsilon`` and a query ``sensitivity``; calling
    :meth:`randomise` adds i.i.d. double-geometric noise to the query answer.

    Examples
    --------
    >>> mech = GeometricMechanism(epsilon=1.0, sensitivity=2.0,
    ...                           rng=np.random.default_rng(0))
    >>> noisy = mech.randomise(np.array([10, 0, 3]))
    >>> noisy.dtype
    dtype('int64')
    """

    def __init__(
        self,
        epsilon: float,
        sensitivity: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        _validate_scale(epsilon, sensitivity)  # fail fast on bad parameters
        self.epsilon = float(epsilon)
        self.sensitivity = float(sensitivity)
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def scale(self) -> float:
        """Noise scale ``sensitivity / epsilon`` (as in Definition 3)."""
        return self.sensitivity / self.epsilon

    @property
    def variance(self) -> float:
        """Exact per-coordinate noise variance."""
        return double_geometric_variance(self.epsilon, self.sensitivity)

    @property
    def laplace_variance_approximation(self) -> float:
        """The 2·(sensitivity/ε)² approximation used by the paper (§5.1)."""
        return 2.0 * self.scale**2

    def randomise(self, values: ArrayLike) -> np.ndarray:
        """Return ``values`` plus i.i.d. double-geometric noise.

        ``values`` must be integer-valued (the mechanism is defined on
        integer queries); floats with integral values are accepted.
        """
        as_int = self._as_integer_array(values)
        noise = double_geometric(
            as_int.shape if as_int.shape else 1,
            self.epsilon,
            self.sensitivity,
            rng=self._rng,
        )
        result = as_int + noise.reshape(as_int.shape if as_int.shape else (1,))
        return result if as_int.shape else result[0]

    def randomise_batch(self, values: ArrayLike, trials: int) -> np.ndarray:
        """Vectorized repeated releases: ``trials`` noisy copies of ``values``.

        Draws all ``trials × n`` noise values in a single vectorized call —
        the batch API introduced alongside the experiment engine
        (:mod:`repro.engine`) so repeated trials of a node's histogram can
        be sampled at once instead of node-by-node, trial-by-trial (see
        :meth:`repro.mechanisms.laplace.LaplaceMechanism.randomise_batch`
        for the Laplace analogue backing the batched omniscient baseline).

        Each row is an independent ε-DP release of the same query answer
        (distributionally identical to calling :meth:`randomise` ``trials``
        times, though the stream of underlying draws is consumed in a
        different order, so individual values differ for a given generator
        state).

        Parameters
        ----------
        values:
            Integer-valued query answer of shape ``(n,)`` (scalars allowed).
        trials:
            Number of independent noisy copies to draw (>= 1).

        Returns
        -------
        numpy.ndarray of int64, shape ``(trials, n)``.

        Examples
        --------
        >>> mech = GeometricMechanism(epsilon=1.0,
        ...                           rng=np.random.default_rng(0))
        >>> mech.randomise_batch(np.array([10, 0, 3]), trials=4).shape
        (4, 3)
        """
        if trials < 1:
            raise EstimationError(f"trials must be >= 1, got {trials}")
        as_int = np.atleast_1d(self._as_integer_array(values))
        noise = double_geometric(
            (int(trials), as_int.size),
            self.epsilon,
            self.sensitivity,
            rng=self._rng,
        )
        return as_int[np.newaxis, :] + noise

    @staticmethod
    def _as_integer_array(values: ArrayLike) -> np.ndarray:
        arr = np.asarray(values)
        as_int = np.rint(arr).astype(np.int64)
        if not np.array_equal(as_int, arr):
            raise EstimationError(
                "GeometricMechanism requires integer-valued query answers"
            )
        return as_int
