"""Explicit privacy-budget accounting.

Algorithm 1 of the paper splits a total budget ε across the L+1 levels of the
hierarchy (sequential composition) and relies on parallel composition within
each level (adding or removing one entity affects exactly one node per
level).  Rather than leaving that arithmetic implicit, the hierarchical
algorithm in this package threads a :class:`PrivacyBudget` ledger through its
noise-adding steps; tests assert that the ledger's total spend never exceeds
the configured ε and that each level's spend equals ε/(L+1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import PrivacyBudgetError

# Tolerance for floating-point budget comparisons.  Budget splits are exact
# divisions of ε, so any drift beyond this indicates a genuine bug.
_EPS_TOL = 1e-9


@dataclass(frozen=True)
class BudgetSplit:
    """An even split of a budget across ``parts`` sequential uses."""

    total: float
    parts: int

    def __post_init__(self) -> None:
        # NaN compares False against everything, so the sign check alone
        # would accept it (and +inf); require finiteness explicitly.
        if not math.isfinite(self.total) or self.total <= 0:
            raise PrivacyBudgetError(
                f"total budget must be positive and finite, got {self.total}"
            )
        if self.parts < 1:
            raise PrivacyBudgetError(f"parts must be >= 1, got {self.parts}")

    @property
    def per_part(self) -> float:
        """Budget available to each sequential use."""
        return self.total / self.parts


class PrivacyBudget:
    """A mutable ε ledger with sequential and parallel composition.

    Spending is recorded per *scope*.  Spends in different scopes at the same
    ``parallel_group`` compose in parallel (their max is charged); spends
    across groups compose sequentially (their sum is charged).  The
    hierarchical algorithm uses one parallel group per hierarchy level and
    one scope per node.

    Examples
    --------
    >>> budget = PrivacyBudget(1.0)
    >>> budget.spend(0.5, scope="national", parallel_group="level0")
    >>> budget.spend(0.5, scope="alabama", parallel_group="level1")
    >>> budget.spend(0.5, scope="alaska", parallel_group="level1")
    >>> round(budget.spent, 10)
    1.0
    >>> budget.remaining
    0.0
    """

    def __init__(self, epsilon: float) -> None:
        if not math.isfinite(epsilon) or epsilon <= 0:
            raise PrivacyBudgetError(
                f"epsilon must be positive and finite, got {epsilon}"
            )
        self.epsilon = float(epsilon)
        # parallel_group -> scope -> total spent by that scope
        self._ledger: Dict[str, Dict[str, float]] = {}

    @property
    def spent(self) -> float:
        """Total ε charged: sum over groups of the max spend within a group."""
        return sum(
            max(scopes.values(), default=0.0) for scopes in self._ledger.values()
        )

    @property
    def remaining(self) -> float:
        """Budget left before the ledger would reject further spends."""
        return max(0.0, self.epsilon - self.spent)

    def spend(self, amount: float, scope: str, parallel_group: str = "default") -> None:
        """Charge ``amount`` to ``scope`` within ``parallel_group``.

        Raises
        ------
        PrivacyBudgetError
            If the amount is nonpositive or the charge would push the total
            (under sequential-of-parallel composition) beyond ε.
        """
        if not math.isfinite(amount) or amount <= 0:
            raise PrivacyBudgetError(
                f"spend amount must be positive and finite, got {amount}"
            )
        scopes = self._ledger.setdefault(parallel_group, {})
        before_group = max(scopes.values(), default=0.0)
        scope_after = scopes.get(scope, 0.0) + amount
        after_group = max(before_group, scope_after)
        new_total = self.spent - before_group + after_group
        if new_total > self.epsilon + _EPS_TOL:
            raise PrivacyBudgetError(
                f"spending {amount} in scope {scope!r} (group {parallel_group!r}) "
                f"would raise total to {new_total:.6g} > epsilon {self.epsilon:.6g}"
            )
        scopes[scope] = scope_after

    def split_levels(self, levels: int) -> BudgetSplit:
        """Return the even per-level split used by Algorithm 1 (ε/(L+1))."""
        return BudgetSplit(self.epsilon, levels)

    def group_spend(self, parallel_group: str) -> float:
        """ε charged by ``parallel_group`` (max across its scopes)."""
        return max(self._ledger.get(parallel_group, {}).values(), default=0.0)

    def audit(self) -> List[Tuple[str, str, float]]:
        """Return (group, scope, spend) rows for inspection and tests."""
        rows: List[Tuple[str, str, float]] = []
        for group, scopes in sorted(self._ledger.items()):
            for scope, amount in sorted(scopes.items()):
                rows.append((group, scope, amount))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"PrivacyBudget(epsilon={self.epsilon}, spent={self.spent:.6g}, "
            f"groups={len(self._ledger)})"
        )
