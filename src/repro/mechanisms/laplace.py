"""The Laplace mechanism (Dwork, McSherry, Nissim, Smith).

The core estimators of the paper use the integer-valued geometric mechanism,
but two places call for the Laplace mechanism:

* the **omniscient baseline** of Section 6.2, which adds Laplace(1/ε) noise
  only to group sizes that actually exist; and
* the **public-bound estimator** of footnote 6, which spends a tiny budget
  (e.g. ε = 1e-4) to compute a safe public upper bound K on the maximum
  group size.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import EstimationError

ArrayLike = Union[int, float, np.ndarray]


class LaplaceMechanism:
    """ε-differentially private real-valued noise for vector queries.

    Examples
    --------
    >>> mech = LaplaceMechanism(epsilon=0.5, sensitivity=1.0,
    ...                         rng=np.random.default_rng(7))
    >>> float(mech.randomise(10.0))  # doctest: +SKIP
    9.1...
    """

    def __init__(
        self,
        epsilon: float,
        sensitivity: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not np.isfinite(epsilon) or epsilon <= 0:
            raise EstimationError(f"epsilon must be positive, got {epsilon!r}")
        if not np.isfinite(sensitivity) or sensitivity <= 0:
            raise EstimationError(f"sensitivity must be positive, got {sensitivity!r}")
        self.epsilon = float(epsilon)
        self.sensitivity = float(sensitivity)
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def scale(self) -> float:
        """Noise scale b = sensitivity / ε."""
        return self.sensitivity / self.epsilon

    @property
    def variance(self) -> float:
        """Per-coordinate noise variance 2·b²."""
        return 2.0 * self.scale**2

    @property
    def standard_deviation(self) -> float:
        """Per-coordinate noise standard deviation √2·b."""
        return float(np.sqrt(2.0)) * self.scale

    def randomise(self, values: ArrayLike) -> np.ndarray:
        """Return ``values`` plus i.i.d. Laplace(scale) noise."""
        arr = np.asarray(values, dtype=np.float64)
        noise = self._rng.laplace(
            loc=0.0, scale=self.scale, size=arr.shape if arr.shape else 1
        )
        result = arr + noise.reshape(arr.shape if arr.shape else (1,))
        return result if arr.shape else result[0]

    def randomise_batch(self, values: ArrayLike, trials: int) -> np.ndarray:
        """Vectorized repeated releases: ``trials`` noisy copies of ``values``.

        All ``trials × n`` Laplace draws happen in one vectorized call; each
        row is an independent ε-DP release of the same query answer.  This
        backs the batched omniscient baseline
        (:meth:`repro.evaluation.omniscient.OmniscientBaseline.run_batch`),
        which the CLI ``sweep`` command uses for its measured error floor.

        Parameters
        ----------
        values:
            Query answer of shape ``(n,)`` (scalars allowed).
        trials:
            Number of independent noisy copies to draw (>= 1).

        Returns
        -------
        numpy.ndarray of float64, shape ``(trials, n)``.

        Examples
        --------
        >>> mech = LaplaceMechanism(epsilon=0.5,
        ...                         rng=np.random.default_rng(7))
        >>> mech.randomise_batch([10.0, 2.0], trials=3).shape
        (3, 2)
        """
        if trials < 1:
            raise EstimationError(f"trials must be >= 1, got {trials}")
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
        noise = self._rng.laplace(
            loc=0.0, scale=self.scale, size=(int(trials), arr.size)
        )
        return arr[np.newaxis, :] + noise
