"""Differential-privacy primitives.

This subpackage implements the noise mechanisms the paper relies on
(Section 3.2) and an explicit privacy-budget ledger used by the hierarchical
algorithm (Section 5.4) to account for sequential composition across levels
and parallel composition within a level.

Public API
----------
- :class:`GeometricMechanism` — integer-valued double-geometric noise.
- :class:`LaplaceMechanism` — real-valued Laplace noise (used only by the
  omniscient baseline and the public-bound estimator).

Both mechanisms additionally expose a vectorized ``randomise_batch(values,
trials)`` method drawing all trials of a repeated release in one call; the
experiment engine (:mod:`repro.engine`) uses it to avoid per-trial,
per-node sampling overhead.
- :class:`PrivacyBudget` — ε ledger with sequential/parallel split helpers.
- :func:`double_geometric` / :func:`double_geometric_variance` — low level
  sampling helpers.
"""

from repro.mechanisms.budget import BudgetSplit, PrivacyBudget
from repro.mechanisms.geometric import (
    GeometricMechanism,
    double_geometric,
    double_geometric_variance,
)
from repro.mechanisms.laplace import LaplaceMechanism

__all__ = [
    "BudgetSplit",
    "GeometricMechanism",
    "LaplaceMechanism",
    "PrivacyBudget",
    "double_geometric",
    "double_geometric_variance",
]
