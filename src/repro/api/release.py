"""The versioned release artifact and its query surface.

A :class:`Release` is what a publisher actually ships: per-node private
histograms plus the spec that produced them, a provenance block (spec hash,
seed, budget-ledger totals) and the variance-based uncertainty report.  It
serializes to the version-2 JSON of :mod:`repro.io` — a strict superset of
the version-1 release files, so :func:`repro.io.load_release` keeps working
on new artifacts and old files keep loading.

Artifacts are **byte-stable**: serialization is canonical (sorted keys),
and wall-clock timing — a measurement, not content — is kept in memory
only, so the same :class:`~repro.api.spec.ReleaseSpec` always writes the
same bytes.  That property is what makes spec-hash keyed storage
(:class:`~repro.api.store.ReleaseStore`) sound.

Every consumer query of :mod:`repro.core.queries` is served directly from
the artifact via :meth:`Release.query` — pure post-processing, so no
additional privacy budget is ever spent answering them.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.api.spec import ReleaseSpec
from repro.core.histogram import CountOfCounts
from repro.core.uncertainty import format_accuracy_report
from repro.core.queries import (
    entities_in_groups_of_size_between,
    gini_coefficient,
    groups_with_size_at_least,
    groups_with_size_between,
    kth_largest_group,
    kth_smallest_group,
    mean_group_size,
    size_quantile,
    top_share,
)
from repro.exceptions import HierarchyError, HistogramError, QueryError
from repro.io import FORMAT_VERSION, check_format_version, export_release_csv

PathLike = Union[str, Path]

#: Every consumer query of :mod:`repro.core.queries`, by name — the full
#: surface a stored artifact can serve without touching the mechanism.
QUERIES = {
    "kth_smallest_group": kth_smallest_group,
    "kth_largest_group": kth_largest_group,
    "size_quantile": size_quantile,
    "groups_with_size_at_least": groups_with_size_at_least,
    "groups_with_size_between": groups_with_size_between,
    "entities_in_groups_of_size_between": entities_in_groups_of_size_between,
    "mean_group_size": mean_group_size,
    "gini_coefficient": gini_coefficient,
    "top_share": top_share,
}


def available_queries() -> Tuple[str, ...]:
    """Names of the queries a release artifact can answer, sorted."""
    return tuple(sorted(QUERIES))


def summary_line(
    spec: ReleaseSpec, num_nodes: int, epsilon_spent: float,
    library_version: str,
) -> str:
    """The one-line artifact description shared by ``Release.summary``
    and the store's histogram-free listing."""
    return (
        f"{spec.dataset} eps={spec.epsilon:g} "
        f"{spec.method_token} seed={spec.seed}: "
        f"{num_nodes} nodes, eps spent {epsilon_spent:.4f}, "
        f"built by {library_version}"
    )


@dataclass(frozen=True)
class Provenance:
    """How an artifact came to be: the audit block of a release.

    ``wall_time_seconds`` is populated when the release is executed in
    this process and ``None`` when the artifact was loaded from disk —
    timing is a measurement of one run, not content of the release, and
    serializing it would break the byte-identical-artifact guarantee.
    """

    spec_hash: str
    seed: int
    epsilon_budget: float
    epsilon_spent: float
    num_levels: int
    num_nodes: int
    library_version: str
    wall_time_seconds: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready audit block (deterministic; timing excluded)."""
        return {
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "epsilon_budget": self.epsilon_budget,
            "epsilon_spent": self.epsilon_spent,
            "num_levels": self.num_levels,
            "num_nodes": self.num_nodes,
            "library_version": self.library_version,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Provenance":
        try:
            return cls(
                spec_hash=str(payload["spec_hash"]),
                seed=int(payload["seed"]),
                epsilon_budget=float(payload["epsilon_budget"]),
                epsilon_spent=float(payload["epsilon_spent"]),
                num_levels=int(payload["num_levels"]),
                num_nodes=int(payload["num_nodes"]),
                library_version=str(payload.get("library_version", "unknown")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise HierarchyError(
                f"malformed release provenance block: {error!r}"
            ) from None


class Release:
    """One published DP release: histograms + spec + provenance + report.

    Examples
    --------
    >>> spec = ReleaseSpec.create(
    ...     "hawaiian", epsilon=2.0, max_size=200, scale=1e-4)
    >>> release = spec.execute()
    >>> release.query("size_quantile", "national", quantile=0.5) >= 0
    True
    >>> release.provenance.epsilon_spent == 2.0
    True
    """

    def __init__(
        self,
        spec: ReleaseSpec,
        estimates: Mapping[str, CountOfCounts],
        provenance: Provenance,
        uncertainty: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.spec = spec
        self.estimates: Dict[str, CountOfCounts] = dict(estimates)
        self.provenance = provenance
        self.uncertainty: Dict[str, float] = dict(uncertainty or {})

    # -- mapping surface ----------------------------------------------------
    def __getitem__(self, node: str) -> CountOfCounts:
        return self.node(node)

    def __contains__(self, node: str) -> bool:
        return node in self.estimates

    def __len__(self) -> int:
        return len(self.estimates)

    def node(self, name: str) -> CountOfCounts:
        """The released histogram of one hierarchy node."""
        try:
            return self.estimates[name]
        except KeyError:
            raise QueryError(
                f"no node {name!r} in release {self.provenance.spec_hash[:12]}; "
                f"available: {self.node_names()[:8]}"
            ) from None

    def node_names(self) -> Tuple[str, ...]:
        """All released node names, sorted."""
        return tuple(sorted(self.estimates))

    # -- queries ------------------------------------------------------------
    def query(self, query: str, node: str, **params: object) -> object:
        """Answer a :mod:`repro.core.queries` question from the artifact.

        ``query`` names any function in :data:`QUERIES`; ``params`` are
        forwarded (e.g. ``quantile=0.5``, ``k=3``, ``fraction=0.1``).
        Pure post-processing: never re-runs the mechanism, never spends
        additional ε.
        """
        try:
            fn = QUERIES[query]
        except KeyError:
            raise QueryError(
                f"unknown query {query!r}; available: {available_queries()}"
            ) from None
        histogram = self.node(node)
        try:
            return fn(histogram, **params)
        except TypeError as error:
            raise QueryError(
                f"bad parameters for query {query!r}: {error}"
            ) from None

    # -- reports ------------------------------------------------------------
    def accuracy_report(self) -> str:
        """The variance-based accuracy report, served from the artifact.

        Same layout as :func:`repro.core.uncertainty.release_report`, but
        computed from the stored per-node predicted EMDs, so a loaded
        artifact reports identically to a freshly executed one.
        """
        if not self.uncertainty:
            raise QueryError(
                "this release was built without the 'uncertainty' "
                "postprocess step, so no accuracy report is stored"
            )
        rows = [
            (node, estimate.num_groups, self.uncertainty[node],
             estimate.num_entities)
            for node, estimate in sorted(self.estimates.items())
            # Bottom-up internal nodes carry no variance model.
            if node in self.uncertainty
        ]
        return format_accuracy_report(
            rows, self.provenance.epsilon_spent,
            self.provenance.epsilon_budget,
        )

    def summary(self) -> str:
        """One-line description for ``repro store list/show``."""
        return summary_line(
            self.spec, len(self), self.provenance.epsilon_spent,
            self.provenance.library_version,
        )

    # -- legacy metadata ----------------------------------------------------
    def legacy_metadata(self) -> Dict[str, object]:
        """The version-1 ``metadata`` block (kept for old consumers)."""
        return {
            "dataset": self.spec.dataset,
            "scale": self.spec.scale,
            "epsilon": self.spec.epsilon,
            "method": self.spec.method_display(self.provenance.num_levels),
            "seed": self.spec.seed,
        }

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The deterministic artifact payload (inverse of :meth:`from_payload`)."""
        return {
            "format_version": FORMAT_VERSION,
            "kind": "release",
            "spec": self.spec.to_dict(),
            "provenance": self.provenance.to_dict(),
            "uncertainty": {
                node: float(value) for node, value in sorted(
                    self.uncertainty.items()
                )
            },
            "metadata": self.legacy_metadata(),
            "nodes": {
                name: histogram.histogram.tolist()
                for name, histogram in self.estimates.items()
            },
        }

    def to_json(self) -> str:
        """Canonical JSON bytes: same spec + seed → same string, always."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def save(self, path: PathLike) -> Path:
        """Write the artifact atomically; returns the final path.

        The temp file gets a unique name so concurrent writers of the
        same artifact never race on it — both finish, last rename wins,
        and (artifacts being byte-stable) both outcomes are identical.
        """
        path = Path(path)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent
        )
        with os.fdopen(fd, "w") as handle:
            handle.write(self.to_json())
        os.replace(tmp_name, path)
        return path

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "Release":
        """Rebuild an artifact from a parsed version-2 payload."""
        check_format_version(payload, "release payload")
        if payload.get("kind") != "release":
            raise HierarchyError("payload is not a release artifact")
        if "spec" not in payload or "provenance" not in payload:
            raise HierarchyError(
                "release payload has no spec/provenance blocks — this is a "
                "version-1 file; read its histograms with repro.io.load_release"
            )
        spec = ReleaseSpec.from_dict(payload["spec"])
        provenance = Provenance.from_dict(payload["provenance"])
        nodes = payload.get("nodes")
        if not isinstance(nodes, dict):
            raise HierarchyError(
                "release payload has no 'nodes' histogram block"
            )
        try:
            estimates = {
                name: CountOfCounts(np.asarray(values))
                for name, values in nodes.items()
            }
            uncertainty = {
                str(node): float(value)
                for node, value in dict(payload.get("uncertainty", {})).items()
            }
        except (TypeError, ValueError, HistogramError) as error:
            raise HierarchyError(
                f"malformed release histogram block: {error}"
            ) from None
        return cls(
            spec=spec, estimates=estimates, provenance=provenance,
            uncertainty=uncertainty,
        )

    @classmethod
    def load(cls, path: PathLike) -> "Release":
        """Read an artifact written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError) as error:
            raise HierarchyError(
                f"cannot read release artifact {path}: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise HierarchyError(f"{path} is not a release artifact")
        return cls.from_payload(payload)

    # -- exports ------------------------------------------------------------
    def export_csv(self, path: PathLike) -> int:
        """Write the Summary-File-style flat CSV; returns rows written."""
        return export_release_csv(self.estimates, path)

    def __repr__(self) -> str:
        return (
            f"Release(dataset={self.spec.dataset!r}, "
            f"epsilon={self.spec.epsilon:g}, nodes={len(self)}, "
            f"spec_hash={self.provenance.spec_hash[:12]!r})"
        )
