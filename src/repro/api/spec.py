"""The declarative release specification.

A :class:`ReleaseSpec` is the single artifact boundary between *describing*
a differentially private publication and *serving* it.  It captures
everything the paper's release pipeline needs — the dataset (or generated
workload) reference, the total budget ε and its per-level split, the
per-level estimator configuration (Section 4), the consistency algorithm
(Section 5 top-down or the Section 6.2.2 bottom-up baseline), the
post-processing steps and the seeds — as one frozen, JSON-serializable
value with a stable SHA-256 :meth:`~ReleaseSpec.spec_hash`.

``spec.execute()`` runs the mechanism exactly once and returns a
:class:`~repro.api.release.Release` artifact; executing the same spec twice
produces byte-identical artifacts, which is what lets the
:class:`~repro.api.store.ReleaseStore` cache releases by spec hash and
answer every downstream query without re-spending privacy budget.

The module keeps a global mechanism-execution counter
(:func:`execution_count`) so tests — and operators — can assert that a
query path served from a store really performed **zero** mechanism runs.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.consistency.bottomup import BottomUp
from repro.core.consistency.merge import STRATEGIES
from repro.core.consistency.topdown import CONSISTENCY_IMPLS, TopDown
from repro.core.estimators.selection import PerLevelSpec
from repro.core.uncertainty import node_error_estimate
from repro.datasets.registry import WORKLOAD_PREFIX, make_dataset
from repro.engine.methods import MethodSpec
from repro.exceptions import EstimationError
from repro.hierarchy.tree import Hierarchy
from repro.perf.timer import stage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.release import Release

#: Consistency algorithms a spec may name.
CONSISTENCY_ALGORITHMS = ("topdown", "bottomup")

#: Post-processing steps a spec may request.  ``"uncertainty"`` bundles the
#: per-node predicted EMD (Section 5.1 variances) into the artifact.
POSTPROCESS_STEPS = ("uncertainty",)

#: Default scale when a spec leaves it unset: the CLI's historical 1e-4
#: fraction for the paper datasets, 1x for generated workloads.
DEFAULT_PAPER_SCALE = 1e-4
DEFAULT_WORKLOAD_SCALE = 1.0

#: Default hierarchy depth for the paper datasets (workload depth is fixed
#: by the workload spec, so their default stays ``None``).
DEFAULT_PAPER_LEVELS = 2

# Global mechanism-execution counter (see execution_count()).
_EXECUTIONS = 0


def execution_count() -> int:
    """How many times any :meth:`ReleaseSpec.execute` ran a mechanism.

    The counter is process-global and monotonically increasing.  Its only
    purpose is observability: the acceptance tests snapshot it around a
    store-served query to prove the stored artifact answered without a
    single mechanism re-run.
    """
    return _EXECUTIONS


def build_hierarchy(
    dataset: str,
    scale: Optional[float] = None,
    levels: Optional[int] = None,
    seed: int = 0,
) -> Hierarchy:
    """Build the true hierarchy for a dataset/workload registry reference.

    One shared implementation of the reference semantics the CLI always
    had: ``scale`` defaults to 1e-4 for paper datasets and 1.0 (a group
    multiplier) for ``workload:<name>`` scenarios; ``levels`` defaults to
    2 for paper datasets and is fixed by the spec for workloads.
    """
    is_workload = dataset.lower().startswith(WORKLOAD_PREFIX)
    kwargs: Dict[str, object] = {
        "scale": effective_scale(dataset, scale),
    }
    if not is_workload:
        kwargs["levels"] = DEFAULT_PAPER_LEVELS if levels is None else levels
    elif levels is not None:
        kwargs["levels"] = levels  # the registry rejects depth conflicts
    return make_dataset(dataset, **kwargs).build(seed=seed)


def effective_scale(dataset: str, scale: Optional[float]) -> float:
    """The scale actually used when it is left unset."""
    if scale is not None:
        return scale
    if dataset.lower().startswith(WORKLOAD_PREFIX):
        return DEFAULT_WORKLOAD_SCALE
    return DEFAULT_PAPER_SCALE


def _normalize_estimator(text: str) -> str:
    """Canonical per-level estimator notation: lowercase, ``" x "`` joins."""
    tokens = [
        part.strip()
        for part in text.lower().replace("×", "x").replace("*", "x").split("x")
    ]
    return " x ".join(tokens)


@dataclass(frozen=True)
class ReleaseSpec:
    """A complete, declarative description of one DP release.

    Attributes
    ----------
    dataset:
        Dataset-registry reference: one of the paper's datasets
        (``housing``, ``white``, ``hawaiian``, ``taxi``) or a generated
        scenario addressed as ``workload:<name>``.
    epsilon:
        Total privacy budget ε for the release.
    estimator:
        Per-level estimator configuration in the paper's notation:
        ``"hc"`` (uniform) or a per-level string like ``"hc x hg"``.
        A single name is expanded to the hierarchy's depth at run time.
    max_size:
        Public bound K on group size (configures Hc/naive estimators).
    consistency:
        ``"topdown"`` (Section 5, Algorithm 1 — the default) or
        ``"bottomup"`` (the Section 6.2.2 baseline, single estimator).
    merge_strategy:
        ``"weighted"`` or ``"naive"`` merging (Section 5.3, top-down only).
    budget_split:
        Per-level budget weights (positive, any scale; normalized at run
        time).  Empty means the paper's uniform ε/(L+1) split.  Top-down
        only — the bottom-up baseline spends the full ε at the leaves.
    postprocess:
        Post-processing steps to bundle into the artifact; subset of
        :data:`POSTPROCESS_STEPS`.
    scale:
        Dataset scale.  ``None`` resolves to 1e-4 for paper datasets and
        1.0 for workloads at construction time, so stored specs are always
        explicit.
    levels:
        Hierarchy depth for the paper datasets (``None`` resolves to 2).
        Workloads fix their own depth, so ``None`` stays ``None``.
    dataset_seed:
        Seed for the deterministic dataset/workload generator.
    seed:
        Seed for the mechanism's noise draws.
    consistency_impl:
        ``"vectorized"`` (default, the batched kernels) or
        ``"reference"`` (the original scalar loops).  The two are
        bit-identical, so this knob is **excluded from the spec hash**
        — it selects an execution strategy, not a release.

    Examples
    --------
    >>> spec = ReleaseSpec.create("hawaiian", epsilon=1.0, max_size=200)
    >>> spec.scale, spec.levels
    (0.0001, 2)
    >>> len(spec.spec_hash())
    64
    >>> spec == ReleaseSpec.from_dict(spec.to_dict())
    True
    """

    dataset: str
    epsilon: float
    estimator: str = "hc"
    max_size: int = 20_000
    consistency: str = "topdown"
    merge_strategy: str = "weighted"
    budget_split: Tuple[float, ...] = ()
    postprocess: Tuple[str, ...] = ("uncertainty",)
    scale: Optional[float] = None
    levels: Optional[int] = None
    dataset_seed: int = 0
    seed: int = 0
    consistency_impl: str = "vectorized"

    # -- validation & normalization -----------------------------------------
    def __post_init__(self) -> None:
        if not self.dataset or not isinstance(self.dataset, str):
            raise EstimationError(
                f"dataset must be a nonempty registry name, got {self.dataset!r}"
            )
        # Canonicalize the reference so equal specs hash equally: paper
        # names are case-insensitive, workload names are case-sensitive
        # past the prefix.
        if self.dataset.lower().startswith(WORKLOAD_PREFIX):
            dataset = WORKLOAD_PREFIX + self.dataset[len(WORKLOAD_PREFIX):]
        else:
            dataset = self.dataset.lower()
        object.__setattr__(self, "dataset", dataset)

        if not np.isfinite(self.epsilon) or self.epsilon <= 0:
            raise EstimationError(
                f"epsilon must be positive and finite, got {self.epsilon!r}"
            )
        object.__setattr__(self, "epsilon", float(self.epsilon))

        estimator = _normalize_estimator(str(self.estimator))
        # Parse once now so unknown estimator names fail at construction,
        # not inside a worker process mid-grid.
        PerLevelSpec.from_string(estimator, max_size=max(1, int(self.max_size)))
        object.__setattr__(self, "estimator", estimator)

        if int(self.max_size) < 1:
            raise EstimationError(
                f"max_size must be >= 1, got {self.max_size}"
            )
        object.__setattr__(self, "max_size", int(self.max_size))

        if self.consistency not in CONSISTENCY_ALGORITHMS:
            raise EstimationError(
                f"unknown consistency algorithm {self.consistency!r}; "
                f"expected one of {CONSISTENCY_ALGORITHMS}"
            )
        if self.merge_strategy not in STRATEGIES:
            raise EstimationError(
                f"unknown merge strategy {self.merge_strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if self.consistency == "bottomup":
            if " x " in self.estimator:
                raise EstimationError(
                    "the bottom-up baseline uses a single estimator; "
                    f"got the per-level spec {self.estimator!r}"
                )
            # Bottom-up never merges, so merge_strategy cannot affect the
            # release; pin it to the default so equivalent specs hash
            # equally (the store must not build one release twice).
            object.__setattr__(self, "merge_strategy", "weighted")

        split = tuple(float(w) for w in self.budget_split)
        for weight in split:
            if not np.isfinite(weight) or weight <= 0:
                raise EstimationError(
                    f"budget_split weights must be positive and finite, "
                    f"got {weight!r}"
                )
        if split and self.consistency == "bottomup":
            raise EstimationError(
                "budget_split applies to the top-down algorithm only; "
                "the bottom-up baseline spends the full budget at the leaves"
            )
        if split and " x " in self.estimator:
            depth = self.estimator.count(" x ") + 1
            if len(split) != depth:
                raise EstimationError(
                    f"budget_split covers {len(split)} levels but the "
                    f"estimator spec {self.estimator!r} covers {depth}"
                )
        object.__setattr__(self, "budget_split", split)

        steps = tuple(self.postprocess)
        for step in steps:
            if step not in POSTPROCESS_STEPS:
                raise EstimationError(
                    f"unknown postprocess step {step!r}; "
                    f"expected a subset of {POSTPROCESS_STEPS}"
                )
        if len(set(steps)) != len(steps):
            raise EstimationError(
                f"duplicate postprocess steps: {steps}"
            )
        object.__setattr__(self, "postprocess", steps)

        if self.scale is not None:
            if not np.isfinite(self.scale) or self.scale <= 0:
                raise EstimationError(
                    f"scale must be positive and finite, got {self.scale!r}"
                )
        # Resolve the dataset-shape defaults so the stored (and hashed)
        # spec is fully explicit about the data it releases.
        is_workload = dataset.startswith(WORKLOAD_PREFIX)
        object.__setattr__(
            self, "scale", float(effective_scale(dataset, self.scale))
        )
        if self.levels is None and not is_workload:
            object.__setattr__(self, "levels", DEFAULT_PAPER_LEVELS)
        if self.levels is not None:
            if int(self.levels) < 2:
                raise EstimationError(
                    f"levels must be >= 2, got {self.levels}"
                )
            object.__setattr__(self, "levels", int(self.levels))
            # The depth is known here (paper datasets resolve it at
            # construction), so per-level configuration of the wrong
            # length can fail now instead of mid-pipeline.
            if " x " in self.estimator:
                depth = self.estimator.count(" x ") + 1
                if depth != self.levels:
                    raise EstimationError(
                        f"estimator spec {self.estimator!r} covers {depth} "
                        f"levels but the hierarchy has {self.levels}"
                    )
            if self.budget_split and len(self.budget_split) != self.levels:
                raise EstimationError(
                    f"budget_split covers {len(self.budget_split)} levels "
                    f"but the hierarchy has {self.levels}"
                )
        object.__setattr__(self, "dataset_seed", int(self.dataset_seed))
        object.__setattr__(self, "seed", int(self.seed))
        if self.consistency_impl not in CONSISTENCY_IMPLS:
            raise EstimationError(
                f"unknown consistency impl {self.consistency_impl!r}; "
                f"expected one of {CONSISTENCY_IMPLS}"
            )

    # -- constructors -------------------------------------------------------
    @classmethod
    def create(
        cls,
        dataset: str,
        epsilon: float,
        estimator: str = "hc",
        max_size: int = 20_000,
        consistency: str = "topdown",
        merge_strategy: str = "weighted",
        budget_split: Sequence[float] = (),
        postprocess: Sequence[str] = ("uncertainty",),
        scale: Optional[float] = None,
        levels: Optional[int] = None,
        dataset_seed: int = 0,
        seed: int = 0,
        consistency_impl: str = "vectorized",
    ) -> "ReleaseSpec":
        """Build a spec with ergonomic (sequence-accepting) arguments."""
        return cls(
            dataset=dataset,
            epsilon=epsilon,
            estimator=estimator,
            max_size=max_size,
            consistency=consistency,
            merge_strategy=merge_strategy,
            budget_split=tuple(budget_split),
            postprocess=tuple(postprocess),
            scale=scale,
            levels=levels,
            dataset_seed=dataset_seed,
            seed=seed,
            consistency_impl=consistency_impl,
        )

    @classmethod
    def from_method_token(
        cls, token: str, dataset: str, epsilon: float, **kwargs: object
    ) -> "ReleaseSpec":
        """Build a spec from a CLI method token.

        Accepted forms mirror :func:`repro.engine.methods.parse_method`:
        ``"hc"``, ``"hg"``, ``"naive"``, per-level strings like
        ``"hc x hg"``, and bottom-up variants ``"bu-hc"`` / ``"bu-hg"``.
        """
        token = token.strip().lower()
        if token.startswith("bu-"):
            return cls.create(
                dataset, epsilon, estimator=token[3:],
                consistency="bottomup", **kwargs,
            )
        return cls.create(dataset, epsilon, estimator=token, **kwargs)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "dataset": self.dataset,
            "epsilon": self.epsilon,
            "estimator": self.estimator,
            "max_size": self.max_size,
            "consistency": self.consistency,
            "merge_strategy": self.merge_strategy,
            "budget_split": list(self.budget_split),
            "postprocess": list(self.postprocess),
            "scale": self.scale,
            "levels": self.levels,
            "dataset_seed": self.dataset_seed,
            "seed": self.seed,
            "consistency_impl": self.consistency_impl,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ReleaseSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        try:
            return cls.create(
                dataset=str(payload["dataset"]),
                epsilon=float(payload["epsilon"]),
                estimator=str(payload.get("estimator", "hc")),
                max_size=int(payload.get("max_size", 20_000)),
                consistency=str(payload.get("consistency", "topdown")),
                merge_strategy=str(payload.get("merge_strategy", "weighted")),
                budget_split=tuple(payload.get("budget_split", ())),
                postprocess=tuple(payload.get("postprocess", ("uncertainty",))),
                scale=payload.get("scale"),
                levels=payload.get("levels"),
                dataset_seed=int(payload.get("dataset_seed", 0)),
                seed=int(payload.get("seed", 0)),
                consistency_impl=str(
                    payload.get("consistency_impl", "vectorized")
                ),
            )
        except KeyError as error:
            raise EstimationError(
                f"release spec payload is missing field {error}"
            ) from None
        except (TypeError, ValueError) as error:
            raise EstimationError(
                f"malformed release spec payload: {error}"
            ) from None

    def canonical_json(self) -> str:
        """The canonical JSON the spec hash is computed over.

        ``consistency_impl`` is dropped: both implementations are
        bit-identical, so reference and vectorized executions of the same
        release must share one store cache entry (and pre-knob artifacts
        keep their hashes).
        """
        payload = self.to_dict()
        del payload["consistency_impl"]
        return json.dumps(payload, sort_keys=True)

    def spec_hash(self) -> str:
        """Stable SHA-256 of the canonical spec (the store's cache key).

        Specs are normalized at construction — estimator notation,
        dataset case, resolved scale/levels defaults, inert fields pinned
        (e.g. ``merge_strategy`` under bottom-up) — so differently
        spelled specs that describe the same release hash identically
        across processes and sessions.  One deliberate exception: a
        uniform shorthand like ``"hc"`` hashes differently from its
        written-out expansion ``"hc x hc"``, because the expansion depth
        is a property of the dataset, not the spec.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # -- adapters into the existing layers ----------------------------------
    @property
    def method_token(self) -> str:
        """The CLI method token this spec's mechanism corresponds to."""
        if self.consistency == "bottomup":
            return f"bu-{self.estimator}"
        return self.estimator

    def method_spec(self, label: Optional[str] = None) -> MethodSpec:
        """This spec's mechanism as an engine :class:`MethodSpec`.

        The adapter that re-expresses engine grids over release specs:
        the returned spec is picklable, cacheable and produces the exact
        release callable :meth:`execute_on` runs.
        """
        if self.consistency == "bottomup":
            return MethodSpec.bottomup(
                self.estimator, max_size=self.max_size,
                label=label or self.method_token,
            )
        if self.budget_split:
            raise EstimationError(
                "non-uniform budget_split specs cannot run through the "
                "experiment grid yet; clear budget_split or execute the "
                "spec directly"
            )
        return MethodSpec.topdown(
            self.estimator, max_size=self.max_size,
            merge_strategy=self.merge_strategy,
            label=label or self.method_token,
        )

    def release_fn(self):
        """A bare release callable ``(hierarchy, epsilon, rng) -> estimates``.

        The adapter for code paths that still consume release functions
        (e.g. custom :class:`~repro.evaluation.runner.ExperimentRunner`
        uses); prefer :meth:`method_spec` where a declarative object is
        accepted, so caching stays available.
        """
        def release(hierarchy, epsilon, rng):
            return self._run_mechanism(hierarchy, epsilon, rng).estimates

        return release

    # -- execution ----------------------------------------------------------
    def expanded_estimator(self, num_levels: int) -> str:
        """The estimator string expanded to one entry per hierarchy level."""
        if " x " in self.estimator:
            return self.estimator
        return " x ".join([self.estimator] * num_levels)

    def per_level_spec(self, num_levels: int) -> PerLevelSpec:
        """The resolved :class:`PerLevelSpec` for a hierarchy of this depth."""
        return PerLevelSpec.from_string(
            self.expanded_estimator(num_levels), max_size=self.max_size
        )

    def method_display(self, num_levels: int) -> str:
        """Human-readable method label (e.g. ``"Hc×Hg"`` or ``"bu-hc"``)."""
        if self.consistency == "bottomup":
            return self.method_token
        return str(self.per_level_spec(num_levels))

    def build_dataset(self) -> Hierarchy:
        """Materialize the true hierarchy this spec releases."""
        return build_hierarchy(
            self.dataset, scale=self.scale, levels=self.levels,
            seed=self.dataset_seed,
        )

    def _run_mechanism(
        self, hierarchy: Hierarchy, epsilon: float, rng: np.random.Generator
    ):
        """One mechanism run; returns the algorithm's result object."""
        global _EXECUTIONS
        _EXECUTIONS += 1
        spec = self.per_level_spec(hierarchy.num_levels)
        if self.consistency == "bottomup":
            return BottomUp(
                spec.for_level(0), impl=self.consistency_impl
            ).run(hierarchy, epsilon, rng=rng)
        weights = (
            np.asarray(self.budget_split, dtype=np.float64)
            if self.budget_split else None
        )
        algo = TopDown(
            spec, merge_strategy=self.merge_strategy, level_weights=weights,
            impl=self.consistency_impl,
        )
        return algo.run(hierarchy, epsilon, rng=rng)

    def execute(self) -> "Release":
        """Build the dataset and run the release pipeline end to end."""
        with stage("materialize"):
            hierarchy = self.build_dataset()
        return self.execute_on(hierarchy)

    def execute_on(self, hierarchy: Hierarchy) -> "Release":
        """Run the release pipeline against an already-built hierarchy.

        The noise stream is seeded solely by ``self.seed``, so the same
        spec executes to a byte-identical artifact every time.
        """
        from repro.api.release import Provenance, Release

        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        result = self._run_mechanism(hierarchy, self.epsilon, rng)
        uncertainty: Dict[str, float] = {}
        if "uncertainty" in self.postprocess:
            # The bottom-up baseline estimates leaves only, so internal
            # nodes have no variance model to predict an EMD from.
            with stage("postprocess"):
                uncertainty = {
                    name: float(node_error_estimate(result, name))
                    for name in sorted(result.estimates)
                    if name in result.initial_estimates
                }
        wall_time = time.perf_counter() - start
        provenance = Provenance(
            spec_hash=self.spec_hash(),
            seed=self.seed,
            epsilon_budget=float(result.budget.epsilon),
            epsilon_spent=float(result.budget.spent),
            num_levels=hierarchy.num_levels,
            num_nodes=len(result.estimates),
            library_version=_library_version(),
            wall_time_seconds=wall_time,
        )
        return Release(
            spec=self,
            estimates=dict(result.estimates),
            provenance=provenance,
            uncertainty=uncertainty,
        )

    # -- convenience --------------------------------------------------------
    def with_epsilon(self, epsilon: float) -> "ReleaseSpec":
        """A copy at a different total budget (ε sweeps)."""
        return replace(self, epsilon=float(epsilon))

    def with_dataset(self, dataset: str) -> "ReleaseSpec":
        """A copy releasing a different dataset reference.

        Scale and levels mean different things for paper datasets
        (fraction of paper-scale data, fixed depth choice) and workloads
        (group-count multiplier, depth fixed by the workload spec), so
        crossing the kind boundary re-resolves both to the new kind's
        defaults instead of carrying the old kind's resolved values over.
        """
        was_workload = self.dataset.startswith(WORKLOAD_PREFIX)
        is_workload = dataset.lower().startswith(WORKLOAD_PREFIX)
        if was_workload != is_workload:
            return replace(self, dataset=dataset, scale=None, levels=None)
        return replace(self, dataset=dataset)

    def with_method(self, token: str) -> "ReleaseSpec":
        """A copy running a different CLI method token."""
        lowered = token.strip().lower()
        if lowered.startswith("bu-"):
            return replace(
                self, estimator=lowered[3:], consistency="bottomup",
                budget_split=(),
            )
        return replace(self, estimator=lowered, consistency="topdown")

    def describe(self) -> str:
        """Multi-line human summary used by ``repro store show``."""
        split = (
            "uniform eps/(L+1)" if not self.budget_split
            else "weights " + ":".join(f"{w:g}" for w in self.budget_split)
        )
        lines = [
            f"release spec {self.spec_hash()[:16]}…",
            f"  dataset      : {self.dataset} (scale {self.scale:g}, "
            f"levels {self.levels if self.levels is not None else 'per spec'}, "
            f"seed {self.dataset_seed})",
            f"  epsilon      : {self.epsilon:g} ({split})",
            f"  method       : {self.method_token} "
            f"(max_size {self.max_size:,}, {self.consistency}, "
            f"merge {self.merge_strategy}, impl {self.consistency_impl})",
            f"  postprocess  : {', '.join(self.postprocess) or 'none'}",
            f"  noise seed   : {self.seed}",
        ]
        return "\n".join(lines)


def _library_version() -> str:
    # Imported lazily: repro/__init__ imports this module, so a top-level
    # import would be circular.
    import repro

    return str(getattr(repro, "__version__", "unknown"))
