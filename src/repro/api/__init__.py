"""Declarative release API: describe a release, serve it from storage.

The paper's end product is a *published DP release* that downstream users
query.  This package makes that the primary object of the codebase:

- :class:`ReleaseSpec` (:mod:`repro.api.spec`) — a frozen,
  JSON-serializable description of one release (dataset/workload ref, ε
  and its per-level split, per-level estimator config, consistency
  algorithm, post-processing, seeds) with a stable SHA-256 spec hash.
- :class:`Release` (:mod:`repro.api.release`) — the versioned artifact
  ``spec.execute()`` produces: per-node histograms, provenance (spec
  hash, seed, budget-ledger totals), and the uncertainty report; answers
  every :mod:`repro.core.queries` question as pure post-processing.
- :class:`ReleaseStore` (:mod:`repro.api.store`) — ``get_or_build``
  caching keyed by spec hash: the mechanism runs at most once per spec,
  and all query traffic is served from the stored artifact.
- :mod:`repro.api.grid` — adapters that re-express engine experiment
  grids as release-spec grids.

Quickstart
----------
>>> from repro.api import ReleaseSpec, ReleaseStore
>>> import tempfile
>>> spec = ReleaseSpec.create("hawaiian", epsilon=1.0, max_size=200)
>>> store = ReleaseStore(tempfile.mkdtemp())
>>> release = store.get_or_build(spec)         # runs the mechanism once
>>> release.query("groups_with_size_at_least", "national", size=1) >= 0
True
>>> store.get_or_build(spec) is not release    # second call: from disk
True
>>> store.statistics()["builds"]
1
"""

from repro.api.grid import expand_grid, to_experiment_grid
from repro.api.release import (
    QUERIES,
    Provenance,
    Release,
    available_queries,
)
from repro.api.spec import (
    CONSISTENCY_ALGORITHMS,
    POSTPROCESS_STEPS,
    ReleaseSpec,
    build_hierarchy,
    execution_count,
)
from repro.api.store import ReleaseStore

__all__ = [
    "CONSISTENCY_ALGORITHMS",
    "POSTPROCESS_STEPS",
    "QUERIES",
    "Provenance",
    "Release",
    "ReleaseSpec",
    "ReleaseStore",
    "available_queries",
    "build_hierarchy",
    "execution_count",
    "expand_grid",
    "to_experiment_grid",
]
