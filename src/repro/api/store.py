"""The queryable release store: build once, serve forever.

A :class:`ReleaseStore` is a directory of release artifacts keyed by their
spec hash.  ``get_or_build(spec)`` is the whole serving model of the
paper's end product: the first request for a spec runs the mechanism once
and persists the artifact; every later request — including every
:mod:`repro.core.queries` question routed through :meth:`ReleaseStore.query`
— is answered from the stored artifact with **zero** mechanism re-runs and
zero additional privacy budget.  The tests pin that down with the global
execution counter (:func:`repro.api.spec.execution_count`).

Artifacts are byte-stable (see :mod:`repro.api.release`), so the store
needs no invalidation protocol: a hash either exists with exactly the
right contents or is built.  A hash may be stored as version-2 JSON (the
interchange format, default) or as an io-format-v3 binary columnar file
(:mod:`repro.io.columnar`) that the serving tier mmap-opens without any
parse; :meth:`ReleaseStore.migrate` converts between them losslessly and
reads are always format-agnostic.  Writes are atomic (tmp + rename),
making a
store directory safe to share between concurrent publishers; within one
process, :meth:`ReleaseStore.get_or_build` additionally serializes
concurrent builders of the *same* spec on a per-spec-hash lock, so the
mechanism runs exactly once per spec (the serving layer's thread pool
relies on this).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.api.release import Provenance, Release, summary_line
from repro.api.spec import ReleaseSpec
from repro.exceptions import (
    HierarchyError,
    IntegrityError,
    QueryError,
    ReproError,
)
from repro.hierarchy.tree import Hierarchy
from repro.io.columnar import (
    ColumnarReader,
    columnar_to_json_bytes,
    write_columnar,
    write_columnar_payload,
)
from repro.resilience.janitor import sweep_stale_tmp

PathLike = Union[str, Path]

#: Subdirectory corrupt artifacts are moved into (never deleted: the
#: evidence of what went wrong is part of the recovery story).
QUARANTINE_DIRNAME = "quarantine"

#: Filename suffix of stored JSON artifacts (distinguishes them from
#: engine result-cache cells, which are plain ``<hash>.json`` files).
ARTIFACT_SUFFIX = ".release.json"

#: Filename suffix of stored binary columnar (io format v3) artifacts.
COLUMNAR_SUFFIX = ".release.bin"

#: Artifact format name → filename suffix.  ``json`` (io format v2) is
#: the interchange format and the default; ``columnar`` (io format v3)
#: is the mmap-backed serving format.  A store may hold a mix.
ARTIFACT_FORMATS: Dict[str, str] = {
    "json": ARTIFACT_SUFFIX,
    "columnar": COLUMNAR_SUFFIX,
}


class ReleaseStore:
    """A directory of spec-hash-keyed release artifacts.

    Examples
    --------
    >>> import tempfile
    >>> store = ReleaseStore(tempfile.mkdtemp())
    >>> spec = ReleaseSpec.create("hawaiian", epsilon=2.0, max_size=200)
    >>> first = store.get_or_build(spec)
    >>> second = store.get_or_build(spec)     # served from disk
    >>> store.builds, store.hits
    (1, 1)
    >>> first.to_json() == second.to_json()
    True
    """

    def __init__(
        self,
        directory: PathLike,
        write_format: str = "json",
        verify_on_open: bool = True,
        heal: bool = True,
        sweep_tmp: bool = True,
    ) -> None:
        if write_format not in ARTIFACT_FORMATS:
            raise QueryError(
                f"unknown artifact format {write_format!r}; "
                f"choose from {sorted(ARTIFACT_FORMATS)}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Format newly built/put artifacts are persisted in.  Reading is
        #: always format-agnostic: the store serves whichever format a
        #: hash is stored under.
        self.write_format = write_format
        #: Verify columnar artifacts' CRC32 checksums on every cold open.
        self.verify_on_open = bool(verify_on_open)
        #: Quarantine + rebuild-from-spec artifacts that fail checksums
        #: (with ``heal=False`` the :class:`IntegrityError` propagates).
        self.heal = bool(heal)
        #: Artifacts served from disk since this store object was created.
        self.hits = 0
        #: Mechanism executions this store object performed.
        self.builds = 0
        #: Checksum failures detected on open.
        self.integrity_failures = 0
        #: Corrupt artifacts moved to the quarantine directory.
        self.quarantines = 0
        #: Quarantined artifacts successfully rebuilt from their spec.
        self.rebuilds = 0
        # Per-spec-hash build locks: concurrent get_or_build callers of the
        # same unbuilt spec run the mechanism exactly once (the other
        # threads block, then serve the artifact the winner persisted).
        self._build_locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        if sweep_tmp:
            # A writer SIGKILL'd between mkstemp and os.replace leaks its
            # unique temp file; collect old orphans (bounded, age-gated)
            # so crashes never grow the directory without limit.
            sweep_stale_tmp(self.directory)

    def _build_lock(self, spec_hash: str) -> threading.Lock:
        with self._locks_guard:
            return self._build_locks.setdefault(spec_hash, threading.Lock())

    # -- paths & enumeration ------------------------------------------------
    def path_for(
        self,
        spec_or_hash: Union[ReleaseSpec, str],
        format: Optional[str] = None,
    ) -> Path:
        """Where the artifact for a spec (or raw hash) lives.

        With an explicit ``format`` ("json" or "columnar"): that format's
        path, whether or not it exists.  Without one: the existing
        artifact's path (preferring :attr:`write_format` when a hash is
        stored in both), falling back to the :attr:`write_format` path
        for a hash not stored yet.
        """
        spec_hash = self._hash_of(spec_or_hash)
        if format is not None:
            try:
                suffix = ARTIFACT_FORMATS[format]
            except KeyError:
                raise QueryError(
                    f"unknown artifact format {format!r}; "
                    f"choose from {sorted(ARTIFACT_FORMATS)}"
                ) from None
            return self.directory / f"{spec_hash}{suffix}"
        preferred = (
            self.directory / f"{spec_hash}{ARTIFACT_FORMATS[self.write_format]}"
        )
        if preferred.exists():
            return preferred
        for suffix in ARTIFACT_FORMATS.values():
            candidate = self.directory / f"{spec_hash}{suffix}"
            if candidate.exists():
                return candidate
        return preferred

    @staticmethod
    def _hash_of(spec_or_hash: Union[ReleaseSpec, str]) -> str:
        if isinstance(spec_or_hash, ReleaseSpec):
            return spec_or_hash.spec_hash()
        return str(spec_or_hash)

    def spec_hashes(self) -> List[str]:
        """Hashes of every stored artifact (either format), sorted."""
        hashes = set()
        for suffix in ARTIFACT_FORMATS.values():
            for path in self.directory.glob(f"*{suffix}"):
                hashes.add(path.name[: -len(suffix)])
        return sorted(hashes)

    def artifact_format(
        self, spec_or_hash: Union[ReleaseSpec, str]
    ) -> Optional[str]:
        """Format a hash is stored under (:attr:`write_format` preferred
        when both exist), or ``None`` when absent."""
        path = self.path_for(spec_or_hash)
        if not path.exists():
            return None
        for name, suffix in ARTIFACT_FORMATS.items():
            if path.name.endswith(suffix):
                return name
        return None  # pragma: no cover - path_for only returns known suffixes

    def releases(self) -> Iterator[Release]:
        """Load every stored artifact (hash order)."""
        for spec_hash in self.spec_hashes():
            yield self._load(spec_hash)

    def summaries(self) -> List[Tuple[str, str]]:
        """(spec hash, one-line summary) per artifact, without building
        releases.

        Listing skips the expensive half of a full load — validating and
        materializing every per-node histogram into ``CountOfCounts``
        arrays — and summarizes from the ``spec`` and ``provenance``
        blocks instead.  (The JSON text itself is still read and parsed;
        artifacts are single documents.)
        """
        rows: List[Tuple[str, str]] = []
        for spec_hash in self.spec_hashes():
            try:
                envelope = self._envelope(spec_hash)
                spec = ReleaseSpec.from_dict(envelope["spec"])
                provenance = Provenance.from_dict(envelope["provenance"])
                summary = summary_line(
                    spec, provenance.num_nodes, provenance.epsilon_spent,
                    provenance.library_version,
                )
            except (OSError, ValueError, KeyError, TypeError, ReproError):
                summary = "unreadable artifact"
            rows.append((spec_hash, summary))
        return rows

    def _envelope(self, spec_hash: str) -> Dict[str, object]:
        """The spec/provenance envelope of one artifact, cheaply.

        Columnar artifacts carry the envelope in their small header, so
        this never touches histogram bytes; JSON artifacts are one
        document and must be parsed whole.
        """
        path = self.path_for(spec_hash)
        if path.name.endswith(COLUMNAR_SUFFIX):
            reader = ColumnarReader(path)
            try:
                return dict(reader.envelope)
            finally:
                reader.close()
        return dict(json.loads(path.read_text()))

    def artifact_info(
        self, spec_or_hash: Union[ReleaseSpec, str]
    ) -> Dict[str, object]:
        """On-disk facts about one artifact: format, version, size.

        Returns ``{spec_hash, path, format, format_version, size_bytes,
        num_nodes}`` — what ``repro store show``/``store list`` surface.
        Raises :class:`QueryError` when the hash is not stored.
        """
        spec_hash = self._hash_of(spec_or_hash)
        path = self.path_for(spec_hash)
        if not path.exists():
            raise QueryError(
                f"no artifact for {spec_hash[:12]}… in {self.directory}"
            )
        info: Dict[str, object] = {
            "spec_hash": spec_hash,
            "path": str(path),
            "format": self.artifact_format(spec_hash),
            "size_bytes": path.stat().st_size,
        }
        if path.name.endswith(COLUMNAR_SUFFIX):
            reader = ColumnarReader(path)
            try:
                info["format_version"] = reader.format_version
                info["num_nodes"] = len(reader)
            finally:
                reader.close()
        else:
            payload = json.loads(path.read_text())
            info["format_version"] = payload.get("format_version", 1)
            info["num_nodes"] = len(payload.get("nodes", {}))
        return info

    def __len__(self) -> int:
        return len(self.spec_hashes())

    def __contains__(self, spec_or_hash: Union[ReleaseSpec, str]) -> bool:
        return self.path_for(spec_or_hash).exists()

    # -- access -------------------------------------------------------------
    def open_columnar(
        self, spec_or_hash: Union[ReleaseSpec, str]
    ) -> ColumnarReader:
        """Mmap-open a hash's columnar artifact (the zero-parse cold path).

        With :attr:`verify_on_open` (the default) the artifact's
        recorded CRC32 checksums are verified first — one ``crc32``
        sweep over the mapped bytes, no parse.  A mismatch quarantines
        the corrupt file and rebuilds it from its own spec when
        :attr:`heal` is on (the reopened, verified artifact is
        returned); with ``heal=False`` the
        :class:`~repro.exceptions.IntegrityError` propagates.

        Raises :class:`QueryError` when the hash has no columnar artifact
        (the serving tier falls back to the JSON decode path then), and
        :class:`HierarchyError` when the artifact's recorded spec hash
        does not match its filename.
        """
        spec_hash = self._hash_of(spec_or_hash)
        path = self.path_for(spec_hash, format="columnar")
        if not path.exists():
            raise QueryError(
                f"no columnar artifact for {spec_hash[:12]}… in "
                f"{self.directory}; run `repro store migrate --to columnar`"
            )
        reader = ColumnarReader(path)
        if reader.spec_hash != spec_hash:
            reader.close()
            raise HierarchyError(
                f"artifact {path.name} claims spec hash "
                f"{reader.spec_hash[:12]}…, expected {spec_hash[:12]}… — the "
                "store directory has been tampered with or mixed up"
            )
        if self.verify_on_open:
            try:
                reader.verify_checksums()
            except IntegrityError:
                reader.close()
                self.integrity_failures += 1
                if not self.heal:
                    raise
                self.heal_columnar(spec_hash)
                reader = ColumnarReader(path)
                reader.verify_checksums()
        return reader

    def quarantine(
        self, spec_or_hash: Union[ReleaseSpec, str],
        format: Optional[str] = None,
    ) -> Path:
        """Move one artifact out of serving into ``quarantine/``.

        The file is renamed (same filesystem, atomic) into the store's
        quarantine subdirectory under a unique name, so the corrupt
        bytes stay available for forensics while the hash reads as
        absent.  Returns the quarantined path; raises
        :class:`QueryError` when there is nothing to quarantine.
        """
        spec_hash = self._hash_of(spec_or_hash)
        path = self.path_for(spec_hash, format=format)
        if not path.exists():
            raise QueryError(
                f"no artifact for {spec_hash[:12]}… in {self.directory} "
                "to quarantine"
            )
        pen = self.directory / QUARANTINE_DIRNAME
        pen.mkdir(exist_ok=True)
        target = pen / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = pen / f"{path.name}.{suffix}"
        os.replace(path, target)
        self.quarantines += 1
        return target

    def quarantined_paths(self) -> List[Path]:
        """Every quarantined artifact file, sorted by name."""
        pen = self.directory / QUARANTINE_DIRNAME
        if not pen.is_dir():
            return []
        return sorted(p for p in pen.iterdir() if p.is_file())

    def heal_columnar(self, spec_hash: str) -> Path:
        """Quarantine a corrupt columnar artifact and rebuild it.

        The rebuild spec comes from the quarantined file's own envelope
        (stored separately from the histogram sections, so a section
        flip leaves it intact); specs are seeded and deterministic, so
        the rebuilt artifact is bit-identical to the original.  Raises
        :class:`~repro.exceptions.IntegrityError` when the envelope is
        itself unreadable — :meth:`get_or_build`, which holds the spec,
        can still rebuild then.
        """
        quarantined = self.quarantine(spec_hash, format="columnar")
        try:
            reader = ColumnarReader(quarantined)
            try:
                spec = ReleaseSpec.from_dict(reader.envelope["spec"])
            finally:
                reader.close()
            if spec.spec_hash() != spec_hash:
                raise HierarchyError(
                    f"quarantined artifact's envelope describes spec "
                    f"{spec.spec_hash()[:12]}…, not {spec_hash[:12]}…"
                )
        except (HierarchyError, KeyError, TypeError, ValueError) as error:
            raise IntegrityError(
                f"columnar artifact for {spec_hash[:12]}… failed its "
                f"checksums and its envelope is unrecoverable ({error}); "
                f"quarantined at {quarantined} — rebuild it from its spec "
                "with get_or_build"
            ) from None
        return self._rebuild(spec, quarantined)

    def _rebuild(self, spec: ReleaseSpec, quarantined: Path) -> Path:
        """Deterministically re-run one quarantined spec's mechanism."""
        release = spec.execute()
        path = write_columnar(
            release, self.path_for(spec.spec_hash(), format="columnar")
        )
        self.builds += 1
        self.rebuilds += 1
        return path

    def _load(self, spec_hash: str) -> Release:
        path = self.path_for(spec_hash)
        if path.name.endswith(COLUMNAR_SUFFIX):
            reader = self.open_columnar(spec_hash)
            try:
                return reader.to_release()
            finally:
                reader.close()
        release = Release.load(path)
        stored = release.provenance.spec_hash
        if stored != spec_hash:
            raise HierarchyError(
                f"artifact {path.name} claims spec hash "
                f"{stored[:12]}…, expected {spec_hash[:12]}… — the store "
                "directory has been tampered with or mixed up"
            )
        return release

    def get(
        self, spec_or_hash: Union[ReleaseSpec, str]
    ) -> Optional[Release]:
        """Load a stored artifact, or ``None`` when absent."""
        spec_hash = self._hash_of(spec_or_hash)
        if not self.path_for(spec_hash).exists():
            return None
        release = self._load(spec_hash)
        self.hits += 1
        return release

    def put(self, release: Release) -> Path:
        """Persist an artifact under its spec hash (atomic), in
        :attr:`write_format`."""
        spec_hash = release.provenance.spec_hash
        path = self.path_for(spec_hash, format=self.write_format)
        if self.write_format == "columnar":
            return write_columnar(release, path)
        return release.save(path)

    def get_or_build(
        self, spec: ReleaseSpec, hierarchy: Optional[Hierarchy] = None
    ) -> Release:
        """Serve the artifact for ``spec``, building it at most once.

        ``hierarchy`` optionally supplies an already-built true hierarchy
        (callers that need the true data anyway — e.g. for error
        diagnostics — avoid generating it twice); it must be the dataset
        the spec describes.

        Thread-safe: concurrent callers requesting the same unbuilt spec
        serialize on a per-spec-hash lock, so the mechanism runs exactly
        once (asserted via :func:`repro.api.spec.execution_count` in the
        store tests); requests for *different* specs never block each
        other.
        """
        cached = self._get_or_quarantine(spec)
        if cached is not None:
            return cached
        with self._build_lock(spec.spec_hash()):
            # Double-checked: a concurrent builder may have persisted the
            # artifact while this thread waited on the lock.
            cached = self._get_or_quarantine(spec)
            if cached is not None:
                return cached
            release = (
                spec.execute() if hierarchy is None
                else spec.execute_on(hierarchy)
            )
            self.put(release)
            self.builds += 1
        return release

    def _get_or_quarantine(self, spec: ReleaseSpec) -> Optional[Release]:
        """``get``, treating an unhealable corrupt artifact as absent.

        :meth:`open_columnar` heals section-level corruption itself;
        what reaches here is the unrecoverable case (the envelope — and
        with it the stored spec — is gone).  The caller *has* the spec,
        so the right move is to make sure the corpse is quarantined and
        rebuild, not to fail the request.
        """
        try:
            return self.get(spec)
        except IntegrityError:
            path = self.path_for(spec, format="columnar")
            if path.exists():  # heal_columnar may have quarantined already
                self.quarantine(spec, format="columnar")
            return None

    def resolve(self, prefix: str) -> str:
        """Expand a unique spec-hash prefix into the full hash."""
        if not prefix:
            raise QueryError("empty spec-hash prefix")
        matches = [h for h in self.spec_hashes() if h.startswith(prefix)]
        if not matches:
            raise QueryError(
                f"no artifact matching {prefix!r} in {self.directory} "
                f"({len(self)} stored)"
            )
        if len(matches) > 1:
            raise QueryError(
                f"spec-hash prefix {prefix!r} is ambiguous: "
                f"{[h[:12] for h in matches]}"
            )
        return matches[0]

    # -- serving queries ----------------------------------------------------
    def query(
        self, spec: ReleaseSpec, query: str, node: str, **params: object
    ) -> object:
        """Answer a :mod:`repro.core.queries` question for ``spec``.

        Serves from the stored artifact when present (the normal case);
        builds it first when not.  Never re-runs a mechanism for a spec
        that is already stored.
        """
        return self.get_or_build(spec).query(query, node, **params)

    # -- maintenance --------------------------------------------------------
    def migrate(self, to: str, keep_original: bool = False) -> int:
        """Convert every stored artifact to format ``to``; returns how
        many were converted (already-``to`` artifacts are skipped).

        Conversion is verified before the original is removed: each new
        artifact must round-trip back to the exact canonical v2 JSON of
        its source (``spec_hash``/provenance bytes unchanged), so a
        migration can never lose information.  With ``keep_original``
        both formats are left on disk (the store then serves
        :attr:`write_format` first).
        """
        if to not in ARTIFACT_FORMATS:
            raise QueryError(
                f"unknown artifact format {to!r}; "
                f"choose from {sorted(ARTIFACT_FORMATS)}"
            )
        converted = 0
        for spec_hash in self.spec_hashes():
            source_format = self.artifact_format(spec_hash)
            target = self.path_for(spec_hash, format=to)
            if source_format == to or target.exists():
                continue
            source = self.path_for(spec_hash, format=source_format)
            if to == "columnar":
                canonical = json.dumps(
                    json.loads(source.read_text()), sort_keys=True
                ).encode("utf-8")
                write_columnar_payload(json.loads(canonical), target)
                if columnar_to_json_bytes(target) != canonical:
                    target.unlink()  # pragma: no cover - round-trip safety net
                    raise HierarchyError(
                        f"columnar conversion of {source.name} failed its "
                        "round-trip verification; original left untouched"
                    )
            else:
                text = columnar_to_json_bytes(source)
                fd, tmp_name = tempfile.mkstemp(
                    prefix=target.name + ".", suffix=".tmp",
                    dir=self.directory,
                )
                with os.fdopen(fd, "wb") as handle:
                    handle.write(text)
                os.replace(tmp_name, target)
            if not keep_original:
                source.unlink()
            converted += 1
        return converted

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        for suffix in ARTIFACT_FORMATS.values():
            for path in self.directory.glob(f"*{suffix}"):
                path.unlink()
                removed += 1
        return removed

    def statistics(self) -> Dict[str, int]:
        """Hit/build/integrity counters plus the current artifact count."""
        return {
            "hits": self.hits,
            "builds": self.builds,
            "entries": len(self),
            "integrity_failures": self.integrity_failures,
            "quarantines": self.quarantines,
            "rebuilds": self.rebuilds,
        }

    def __repr__(self) -> str:
        return f"ReleaseStore({str(self.directory)!r}, entries={len(self)})"
