"""The queryable release store: build once, serve forever.

A :class:`ReleaseStore` is a directory of release artifacts keyed by their
spec hash.  ``get_or_build(spec)`` is the whole serving model of the
paper's end product: the first request for a spec runs the mechanism once
and persists the artifact; every later request — including every
:mod:`repro.core.queries` question routed through :meth:`ReleaseStore.query`
— is answered from the stored artifact with **zero** mechanism re-runs and
zero additional privacy budget.  The tests pin that down with the global
execution counter (:func:`repro.api.spec.execution_count`).

Artifacts are byte-stable (see :mod:`repro.api.release`), so the store
needs no invalidation protocol: a hash either exists with exactly the
right contents or is built.  Writes are atomic (tmp + rename), making a
store directory safe to share between concurrent publishers; within one
process, :meth:`ReleaseStore.get_or_build` additionally serializes
concurrent builders of the *same* spec on a per-spec-hash lock, so the
mechanism runs exactly once per spec (the serving layer's thread pool
relies on this).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.api.release import Provenance, Release, summary_line
from repro.api.spec import ReleaseSpec
from repro.exceptions import HierarchyError, QueryError, ReproError
from repro.hierarchy.tree import Hierarchy

PathLike = Union[str, Path]

#: Filename suffix of stored artifacts (distinguishes them from engine
#: result-cache cells, which are plain ``<hash>.json`` files).
ARTIFACT_SUFFIX = ".release.json"


class ReleaseStore:
    """A directory of spec-hash-keyed release artifacts.

    Examples
    --------
    >>> import tempfile
    >>> store = ReleaseStore(tempfile.mkdtemp())
    >>> spec = ReleaseSpec.create("hawaiian", epsilon=2.0, max_size=200)
    >>> first = store.get_or_build(spec)
    >>> second = store.get_or_build(spec)     # served from disk
    >>> store.builds, store.hits
    (1, 1)
    >>> first.to_json() == second.to_json()
    True
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Artifacts served from disk since this store object was created.
        self.hits = 0
        #: Mechanism executions this store object performed.
        self.builds = 0
        # Per-spec-hash build locks: concurrent get_or_build callers of the
        # same unbuilt spec run the mechanism exactly once (the other
        # threads block, then serve the artifact the winner persisted).
        self._build_locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()

    def _build_lock(self, spec_hash: str) -> threading.Lock:
        with self._locks_guard:
            return self._build_locks.setdefault(spec_hash, threading.Lock())

    # -- paths & enumeration ------------------------------------------------
    def path_for(self, spec_or_hash: Union[ReleaseSpec, str]) -> Path:
        """Where the artifact for a spec (or raw hash) lives."""
        return self.directory / f"{self._hash_of(spec_or_hash)}{ARTIFACT_SUFFIX}"

    @staticmethod
    def _hash_of(spec_or_hash: Union[ReleaseSpec, str]) -> str:
        if isinstance(spec_or_hash, ReleaseSpec):
            return spec_or_hash.spec_hash()
        return str(spec_or_hash)

    def spec_hashes(self) -> List[str]:
        """Hashes of every stored artifact, sorted."""
        return sorted(
            path.name[: -len(ARTIFACT_SUFFIX)]
            for path in self.directory.glob(f"*{ARTIFACT_SUFFIX}")
        )

    def releases(self) -> Iterator[Release]:
        """Load every stored artifact (hash order)."""
        for spec_hash in self.spec_hashes():
            yield self._load(spec_hash)

    def summaries(self) -> List[Tuple[str, str]]:
        """(spec hash, one-line summary) per artifact, without building
        releases.

        Listing skips the expensive half of a full load — validating and
        materializing every per-node histogram into ``CountOfCounts``
        arrays — and summarizes from the ``spec`` and ``provenance``
        blocks instead.  (The JSON text itself is still read and parsed;
        artifacts are single documents.)
        """
        rows: List[Tuple[str, str]] = []
        for spec_hash in self.spec_hashes():
            try:
                payload = json.loads(self.path_for(spec_hash).read_text())
                spec = ReleaseSpec.from_dict(payload["spec"])
                provenance = Provenance.from_dict(payload["provenance"])
                summary = summary_line(
                    spec, provenance.num_nodes, provenance.epsilon_spent,
                    provenance.library_version,
                )
            except (OSError, ValueError, KeyError, TypeError, ReproError):
                summary = "unreadable artifact"
            rows.append((spec_hash, summary))
        return rows

    def __len__(self) -> int:
        return len(self.spec_hashes())

    def __contains__(self, spec_or_hash: Union[ReleaseSpec, str]) -> bool:
        return self.path_for(spec_or_hash).exists()

    # -- access -------------------------------------------------------------
    def _load(self, spec_hash: str) -> Release:
        release = Release.load(self.path_for(spec_hash))
        stored = release.provenance.spec_hash
        if stored != spec_hash:
            raise HierarchyError(
                f"artifact {self.path_for(spec_hash).name} claims spec hash "
                f"{stored[:12]}…, expected {spec_hash[:12]}… — the store "
                "directory has been tampered with or mixed up"
            )
        return release

    def get(
        self, spec_or_hash: Union[ReleaseSpec, str]
    ) -> Optional[Release]:
        """Load a stored artifact, or ``None`` when absent."""
        spec_hash = self._hash_of(spec_or_hash)
        if not self.path_for(spec_hash).exists():
            return None
        release = self._load(spec_hash)
        self.hits += 1
        return release

    def put(self, release: Release) -> Path:
        """Persist an artifact under its spec hash (atomic)."""
        return release.save(self.path_for(release.provenance.spec_hash))

    def get_or_build(
        self, spec: ReleaseSpec, hierarchy: Optional[Hierarchy] = None
    ) -> Release:
        """Serve the artifact for ``spec``, building it at most once.

        ``hierarchy`` optionally supplies an already-built true hierarchy
        (callers that need the true data anyway — e.g. for error
        diagnostics — avoid generating it twice); it must be the dataset
        the spec describes.

        Thread-safe: concurrent callers requesting the same unbuilt spec
        serialize on a per-spec-hash lock, so the mechanism runs exactly
        once (asserted via :func:`repro.api.spec.execution_count` in the
        store tests); requests for *different* specs never block each
        other.
        """
        cached = self.get(spec)
        if cached is not None:
            return cached
        with self._build_lock(spec.spec_hash()):
            # Double-checked: a concurrent builder may have persisted the
            # artifact while this thread waited on the lock.
            cached = self.get(spec)
            if cached is not None:
                return cached
            release = (
                spec.execute() if hierarchy is None
                else spec.execute_on(hierarchy)
            )
            self.put(release)
            self.builds += 1
        return release

    def resolve(self, prefix: str) -> str:
        """Expand a unique spec-hash prefix into the full hash."""
        if not prefix:
            raise QueryError("empty spec-hash prefix")
        matches = [h for h in self.spec_hashes() if h.startswith(prefix)]
        if not matches:
            raise QueryError(
                f"no artifact matching {prefix!r} in {self.directory} "
                f"({len(self)} stored)"
            )
        if len(matches) > 1:
            raise QueryError(
                f"spec-hash prefix {prefix!r} is ambiguous: "
                f"{[h[:12] for h in matches]}"
            )
        return matches[0]

    # -- serving queries ----------------------------------------------------
    def query(
        self, spec: ReleaseSpec, query: str, node: str, **params: object
    ) -> object:
        """Answer a :mod:`repro.core.queries` question for ``spec``.

        Serves from the stored artifact when present (the normal case);
        builds it first when not.  Never re-runs a mechanism for a spec
        that is already stored.
        """
        return self.get_or_build(spec).query(query, node, **params)

    # -- maintenance --------------------------------------------------------
    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        for path in self.directory.glob(f"*{ARTIFACT_SUFFIX}"):
            path.unlink()
            removed += 1
        return removed

    def statistics(self) -> Dict[str, int]:
        """Hit/build counters plus the current artifact count."""
        return {"hits": self.hits, "builds": self.builds, "entries": len(self)}

    def __repr__(self) -> str:
        return f"ReleaseStore({str(self.directory)!r}, entries={len(self)})"
