"""Release-spec grids: the declarative face of the experiment engine.

The engine's :class:`~repro.engine.grid.ExperimentGrid` enumerates
``datasets × methods × epsilons × trials`` over already-built hierarchies
and picklable :class:`~repro.engine.methods.MethodSpec` objects.  This
module re-expresses that product in terms of :class:`ReleaseSpec`:

* :func:`expand_grid` fans one base spec out over dataset / method /
  epsilon axes, producing the full list of release specs;
* :func:`to_experiment_grid` factors such a list back into an
  :class:`ExperimentGrid` (validating that it really is a product), so
  the cached, parallel engine — and its bit-identical per-cell seeding —
  runs unchanged underneath the declarative layer.

The CLI's ``grid`` and ``workload run-grid`` subcommands route through
these functions, which is what makes "a grid" and "a set of release
specs" the same object described two ways.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.spec import ReleaseSpec, build_hierarchy
from repro.engine.grid import ExperimentGrid
from repro.engine.methods import MethodSpec
from repro.exceptions import EstimationError
from repro.hierarchy.tree import Hierarchy


def expand_grid(
    base: ReleaseSpec,
    datasets: Optional[Sequence[str]] = None,
    methods: Optional[Sequence[str]] = None,
    epsilons: Optional[Sequence[float]] = None,
) -> List[ReleaseSpec]:
    """Fan ``base`` out over dataset / method-token / epsilon axes.

    Unspecified axes keep the base spec's value.  The result enumerates
    the full Cartesian product in (dataset, method, epsilon) order — the
    same cell order the engine uses.

    Examples
    --------
    >>> base = ReleaseSpec.create("hawaiian", epsilon=1.0, max_size=200)
    >>> specs = expand_grid(base, methods=["hc", "bu-hg"],
    ...                     epsilons=[0.5, 1.0])
    >>> len(specs)
    4
    >>> sorted({s.method_token for s in specs})
    ['bu-hg', 'hc']
    """
    dataset_axis = list(datasets) if datasets else [base.dataset]
    method_axis = list(methods) if methods else [base.method_token]
    epsilon_axis = [float(e) for e in epsilons] if epsilons else [base.epsilon]
    return [
        base.with_dataset(dataset).with_method(token).with_epsilon(epsilon)
        for dataset in dataset_axis
        for token in method_axis
        for epsilon in epsilon_axis
    ]


def _first_seen(values: Sequence[object]) -> List[object]:
    seen: Dict[object, None] = {}
    for value in values:
        seen.setdefault(value, None)
    return list(seen)


def to_experiment_grid(
    specs: Sequence[ReleaseSpec],
    trials: int = 10,
    labels: Optional[Mapping[str, str]] = None,
    hierarchies: Optional[Mapping[str, Hierarchy]] = None,
) -> ExperimentGrid:
    """Factor a list of release specs into an :class:`ExperimentGrid`.

    The specs must form an exact ``datasets × methods × epsilons``
    product sharing one noise seed, identical per-dataset build
    parameters and identical per-method mechanism parameters — anything
    else is not a grid and raises :class:`EstimationError`.

    Parameters
    ----------
    specs:
        The release specs (e.g. from :func:`expand_grid`).
    trials:
        Repetitions per configuration (the paper's 10).
    labels:
        Optional display-label override per method token (the CLI passes
        the user's original token spelling so cell seeds — which are
        keyed by label — match the historical ones exactly).
    hierarchies:
        Optional pre-built hierarchies per dataset name.  Datasets not in
        the mapping are built from their spec (scale / levels /
        dataset_seed); the ``workload run-grid`` path passes its already
        materialized scenarios here.

    Examples
    --------
    >>> base = ReleaseSpec.create("hawaiian", epsilon=1.0, max_size=200)
    >>> grid = to_experiment_grid(
    ...     expand_grid(base, methods=["hc", "bu-hg"]), trials=2)
    >>> len(grid.cells())
    4
    """
    if not specs:
        raise EstimationError("to_experiment_grid needs at least one spec")

    seeds = {spec.seed for spec in specs}
    if len(seeds) != 1:
        raise EstimationError(
            f"grid specs must share one noise seed, got {sorted(seeds)}"
        )

    dataset_params: Dict[str, Tuple] = {}
    method_params: Dict[str, ReleaseSpec] = {}
    combos: Dict[Tuple[str, str, float], int] = {}
    for spec in specs:
        shape = (spec.scale, spec.levels, spec.dataset_seed)
        previous = dataset_params.setdefault(spec.dataset, shape)
        if previous != shape:
            raise EstimationError(
                f"dataset {spec.dataset!r} appears with conflicting build "
                f"parameters {previous} vs {shape}"
            )
        token = spec.method_token
        anchor = method_params.setdefault(token, spec)
        if (
            anchor.max_size, anchor.merge_strategy, anchor.budget_split
        ) != (spec.max_size, spec.merge_strategy, spec.budget_split):
            raise EstimationError(
                f"method {token!r} appears with conflicting mechanism "
                "parameters across the grid"
            )
        key = (spec.dataset, token, spec.epsilon)
        combos[key] = combos.get(key, 0) + 1

    dataset_names = _first_seen([spec.dataset for spec in specs])
    method_tokens = _first_seen([spec.method_token for spec in specs])
    epsilons = _first_seen([spec.epsilon for spec in specs])
    expected = len(dataset_names) * len(method_tokens) * len(epsilons)
    if len(specs) != expected or any(count != 1 for count in combos.values()):
        raise EstimationError(
            f"{len(specs)} specs do not form the "
            f"{len(dataset_names)}x{len(method_tokens)}x{len(epsilons)} "
            "dataset x method x epsilon product (missing or duplicate cells)"
        )

    labels = dict(labels or {})
    methods: List[MethodSpec] = [
        method_params[token].method_spec(label=labels.get(token, token))
        for token in method_tokens
    ]
    built: Dict[str, Hierarchy] = {}
    for name in dataset_names:
        if hierarchies is not None and name in hierarchies:
            built[name] = hierarchies[name]
        else:
            scale, levels, dataset_seed = dataset_params[name]
            built[name] = build_hierarchy(
                name, scale=scale, levels=levels, seed=dataset_seed
            )

    return ExperimentGrid(
        built, methods, epsilons=list(epsilons), trials=trials,
        seed=specs[0].seed,
    )
