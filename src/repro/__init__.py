"""Differentially private hierarchical count-of-counts histograms.

A from-scratch reproduction of Kuo et al., *Differentially Private
Hierarchical Count-of-Counts Histograms* (VLDB 2018).

Quickstart
----------
>>> import numpy as np
>>> from repro import CountOfCounts, CumulativeEstimator, TopDown
>>> from repro.hierarchy import from_leaf_histograms
>>> tree = from_leaf_histograms("US", {"VA": [0, 9, 3], "MD": [0, 5, 2]})
>>> algo = TopDown(CumulativeEstimator(max_size=8))
>>> result = algo.run(tree, epsilon=2.0, rng=np.random.default_rng(0))
>>> result["US"].num_groups   # public group counts are preserved
19

See README.md for the method-to-module index and docs/architecture.md for
the module map and publication data flow; each benchmark under
``benchmarks/`` regenerates one table or figure of the paper.
"""

from repro.core.attributes import AttributedTopDown
from repro.core.consistency import BottomUp, TopDown, mean_consistency
from repro.core.private_groups import release_group_counts
from repro.core.uncertainty import (
    group_size_intervals,
    node_error_estimate,
    release_report,
)
from repro.core.queries import (
    gini_coefficient,
    groups_with_size_at_least,
    groups_with_size_between,
    kth_largest_group,
    kth_smallest_group,
    mean_group_size,
    size_quantile,
    top_share,
)
from repro.core.estimators import (
    BayesianCumulativeEstimator,
    CumulativeEstimator,
    DensitySelector,
    NaiveEstimator,
    PerLevelSpec,
    UnattributedEstimator,
    estimate_public_bound,
)
from repro.core.histogram import CountOfCounts
from repro.core.metrics import earthmover_distance, l1_distance, l2_distance
from repro.exceptions import (
    EstimationError,
    HierarchyError,
    HistogramError,
    MatchingError,
    PerfError,
    PrivacyBudgetError,
    QueryError,
    ReproError,
    WorkloadError,
)
from repro.engine import (
    ExperimentGrid,
    MethodSpec,
    ResultCache,
    run_experiments,
    run_grid,
)
from repro.api import Release, ReleaseSpec, ReleaseStore
from repro.hierarchy import Hierarchy, Node
from repro.mechanisms import GeometricMechanism, LaplaceMechanism, PrivacyBudget
from repro.perf import PeakMemory, PerfReport, StageTimer, timed
from repro.serve import QueryResult, QuerySpec, ServingEngine
from repro.workloads import WorkloadDataset, WorkloadSpec, materialize

__version__ = "1.6.0"

__all__ = [
    "AttributedTopDown",
    "ExperimentGrid",
    "MethodSpec",
    "ResultCache",
    "run_experiments",
    "run_grid",
    "BayesianCumulativeEstimator",
    "BottomUp",
    "CountOfCounts",
    "DensitySelector",
    "CumulativeEstimator",
    "EstimationError",
    "GeometricMechanism",
    "Hierarchy",
    "HierarchyError",
    "HistogramError",
    "LaplaceMechanism",
    "MatchingError",
    "NaiveEstimator",
    "Node",
    "PeakMemory",
    "PerLevelSpec",
    "PerfError",
    "PerfReport",
    "PrivacyBudget",
    "PrivacyBudgetError",
    "QueryError",
    "QueryResult",
    "QuerySpec",
    "Release",
    "ReleaseSpec",
    "ReleaseStore",
    "ServingEngine",
    "ReproError",
    "StageTimer",
    "TopDown",
    "UnattributedEstimator",
    "WorkloadDataset",
    "WorkloadError",
    "WorkloadSpec",
    "materialize",
    "earthmover_distance",
    "estimate_public_bound",
    "gini_coefficient",
    "group_size_intervals",
    "groups_with_size_at_least",
    "groups_with_size_between",
    "kth_largest_group",
    "kth_smallest_group",
    "l1_distance",
    "l2_distance",
    "mean_consistency",
    "mean_group_size",
    "node_error_estimate",
    "release_group_counts",
    "release_report",
    "size_quantile",
    "timed",
    "top_share",
    "__version__",
]
