"""Artifact serialization: JSON interchange (v1/v2) + binary columnar (v3).

``repro.io`` started life as a single JSON module; it is now a package
with two sibling codecs over the same release content:

* :mod:`repro.io.json_format` — the human-readable **interchange**
  format.  Version 2 JSON is what publishers exchange, what
  ``spec_hash``/provenance bytes are defined over, and what every other
  tool (and older library version) reads.  It is the format of record.
* :mod:`repro.io.columnar` — **format v3**, a compact binary columnar
  layout of the same artifact: Hg, Hc, precomputed suffix sums and
  per-node offsets as flat little-endian arrays behind a small header +
  section table, read through an mmap-backed
  :class:`~repro.io.columnar.ColumnarReader` so a cold query is
  open → mmap → answer with **zero parse** of histogram data.

The two formats are a canonical, losslessly round-trippable pair:
``v2 JSON → v3 binary → v2 JSON`` reproduces the exact bytes
(:func:`~repro.io.columnar.columnar_to_json_bytes`), and decoded arrays
are bit-equal to JSON-decoded ones.  JSON stays the interchange format;
the binary format exists purely so the serving tier never pays a JSON
decode on the hot path.

Importing from ``repro.io`` keeps working exactly as before the package
promotion — every ``json_format`` name is re-exported here.
"""

from repro.io.json_format import (
    FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    PathLike,
    check_format_version,
    export_release_csv,
    hierarchy_fingerprint,
    import_release_csv,
    load_hierarchy,
    load_release,
    release_metadata,
    save_hierarchy,
    save_release,
)
from repro.io.columnar import (
    COLUMNAR_FORMAT_VERSION,
    COLUMNAR_MAGIC,
    SUPPORTED_COLUMNAR_VERSIONS,
    ColumnarReader,
    columnar_to_json_bytes,
    header_size,
    is_columnar_file,
    json_payload_from_columnar,
    write_columnar,
    write_columnar_payload,
)

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "COLUMNAR_MAGIC",
    "ColumnarReader",
    "FORMAT_VERSION",
    "PathLike",
    "SUPPORTED_COLUMNAR_VERSIONS",
    "SUPPORTED_FORMAT_VERSIONS",
    "check_format_version",
    "columnar_to_json_bytes",
    "export_release_csv",
    "header_size",
    "hierarchy_fingerprint",
    "import_release_csv",
    "is_columnar_file",
    "json_payload_from_columnar",
    "load_hierarchy",
    "load_release",
    "release_metadata",
    "save_hierarchy",
    "save_release",
    "write_columnar",
    "write_columnar_payload",
]
