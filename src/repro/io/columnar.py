"""Format v3: binary columnar release artifacts with mmap zero-parse reads.

The JSON interchange format (:mod:`repro.io.json_format`) is what
publishers exchange; it is also what the serving tier used to pay for on
every cold request — a full ``json.loads`` plus per-node histogram
validation before the first answer.  Format v3 stores the *same
artifact* as flat little-endian int64 columns behind a small header, so
a cold query is open → mmap → answer, touching only the bytes of the one
node it needs:

``index header``
    ``RPROCOL1`` magic, two little-endian ``uint32`` byte lengths, the
    **section table** as fixed-order packed int64 (offset, length) pairs
    — one per :data:`SECTION_NAMES` entry — then one *small* canonical
    JSON object: format version, spec hash, and the sorted node names.
    This is the only thing a cold open parses.
``envelope``
    The v2 payload's non-histogram blocks
    (``spec``/``provenance``/``uncertainty``/``metadata``) as canonical
    JSON bytes, stored verbatim so the round trip is byte-lossless —
    and parsed **lazily**, only when a full release decode asks for it;
    a cold query never touches it.
``sections``
    64-byte-aligned flat arrays: per-node ``H`` (count-of-counts) and
    ``Hc`` (cumulative) columns sharing one offsets array, per-node
    ``Hg`` (unattributed) and its precomputed **suffix sums** sharing a
    second offsets array, plus ``num_groups``/``num_entities`` scalar
    columns.  Everything the query kernels consume is precomputed at
    write time, so the read path never runs ``cumsum``/``repeat``.

The mapping to/from version-2 JSON is canonical and lossless:
:func:`columnar_to_json_bytes` reproduces the exact canonical v2 bytes
the artifact was converted from (``spec_hash`` and provenance bytes
unchanged), and every decoded array is bit-equal to its JSON-decoded
counterpart — ``tests/io`` pins both properties down.  JSON remains the
interchange format; v3 is a serving-side representation only.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.histogram import CountOfCounts
from repro.exceptions import HierarchyError, IntegrityError, QueryError
from repro.io.json_format import check_format_version

PathLike = Union[str, Path]

#: Magic prefix of every v3 artifact file (container layout revision 1;
#: the logical format version lives in the header, like JSON files).
COLUMNAR_MAGIC = b"RPROCOL1"

#: The io format version of the binary columnar layout.  Versions 1 and
#: 2 are the JSON formats; the binary codec starts the lineage at 3.
COLUMNAR_FORMAT_VERSION = 3

#: Binary versions this build can read.  A v4 file — whatever it may
#: mean one day — is rejected by :func:`check_format_version`, never
#: best-effort parsed.
SUPPORTED_COLUMNAR_VERSIONS = (3,)

#: ``kind`` field of the header (mirrors the JSON files' ``kind``).
COLUMNAR_KIND = "release-columnar"

#: Section payloads are aligned to this many bytes so mmap'd views can
#: be consumed zero-copy by vectorized kernels (and stay cache-friendly).
SECTION_ALIGNMENT = 64

#: Fixed section order; every column is flat little-endian int64.
#: ``h``/``hc`` share ``h_offsets`` (same per-node lengths), ``hg`` and
#: its suffix sums share ``hg_offsets``.
SECTION_NAMES = (
    "h_values", "h_offsets", "hc_values",
    "hg_values", "hg_offsets", "tail_values",
    "num_groups", "num_entities",
)

_DTYPE = np.dtype("<i8")
#: Packed binary section table: one little-endian (offset, length) int64
#: pair per section, in :data:`SECTION_NAMES` order.
_SECTION_TABLE = struct.Struct(f"<{2 * len(SECTION_NAMES)}q")
#: magic + uint32 index length + uint32 envelope length + section table.
_HEADER_PREFIX_SIZE = len(COLUMNAR_MAGIC) + 8 + _SECTION_TABLE.size


def _align(offset: int) -> int:
    return (offset + SECTION_ALIGNMENT - 1) & ~(SECTION_ALIGNMENT - 1)


def is_columnar_file(path: PathLike) -> bool:
    """True when ``path`` starts with the v3 magic (cheap format sniff)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(COLUMNAR_MAGIC)) == COLUMNAR_MAGIC
    except OSError:
        return False


def header_size(path: PathLike) -> int:
    """Byte offset where a v3 file's section region starts.

    Everything before it is header (magic, lengths, section table, index
    JSON, envelope JSON, alignment padding); everything at or after it
    is histogram column data.  Fault injection uses this to aim byte
    flips at *section* bytes specifically.
    """
    with open(path, "rb") as handle:
        prefix = handle.read(_HEADER_PREFIX_SIZE)
        if len(prefix) < _HEADER_PREFIX_SIZE or not prefix.startswith(
            COLUMNAR_MAGIC
        ):
            raise HierarchyError(
                f"{path} is not a columnar release artifact (bad magic)"
            )
        index_length, envelope_length = struct.unpack_from(
            "<II", prefix, len(COLUMNAR_MAGIC)
        )
    return _align(_HEADER_PREFIX_SIZE + index_length + envelope_length)


def _columns_from_estimates(
    names: List[str], estimates: Mapping[str, CountOfCounts]
) -> Dict[str, np.ndarray]:
    """The eight section arrays for a node-name → histogram mapping."""
    h_parts: List[np.ndarray] = []
    hc_parts: List[np.ndarray] = []
    hg_parts: List[np.ndarray] = []
    tail_parts: List[np.ndarray] = []
    h_offsets = np.zeros(len(names) + 1, dtype=np.int64)
    hg_offsets = np.zeros(len(names) + 1, dtype=np.int64)
    groups = np.zeros(len(names), dtype=np.int64)
    entities = np.zeros(len(names), dtype=np.int64)
    for index, name in enumerate(names):
        histogram = estimates[name]
        h_parts.append(histogram.histogram)
        hc_parts.append(histogram.cumulative)
        hg_parts.append(histogram.unattributed)
        tail_parts.append(histogram.suffix_sums)
        h_offsets[index + 1] = h_offsets[index] + histogram.histogram.size
        hg_offsets[index + 1] = hg_offsets[index] + histogram.unattributed.size
        groups[index] = histogram.num_groups
        entities[index] = histogram.num_entities
    return {
        "h_values": np.concatenate(h_parts) if h_parts else
        np.empty(0, dtype=np.int64),
        "h_offsets": h_offsets,
        "hc_values": np.concatenate(hc_parts) if hc_parts else
        np.empty(0, dtype=np.int64),
        "hg_values": np.concatenate(hg_parts) if hg_parts else
        np.empty(0, dtype=np.int64),
        "hg_offsets": hg_offsets,
        "tail_values": np.concatenate(tail_parts) if tail_parts else
        np.empty(0, dtype=np.int64),
        "num_groups": groups,
        "num_entities": entities,
    }


def _write_file(
    envelope: Mapping[str, object],
    names: List[str],
    columns: Mapping[str, np.ndarray],
    path: PathLike,
    format_version: int = COLUMNAR_FORMAT_VERSION,
) -> Path:
    """Serialize header + sections atomically; returns the final path.

    Deterministic byte for byte: canonical header JSON, fixed section
    order, zero padding — the same release always writes the same file,
    preserving the store's byte-stable-artifact contract.
    """
    table: List[int] = []
    payloads: Dict[str, bytes] = {}
    relative = 0
    for section in SECTION_NAMES:
        array = columns[section]
        payloads[section] = np.ascontiguousarray(
            array, dtype=_DTYPE
        ).tobytes()
        table += [relative, int(array.size)]
        relative = _align(relative + array.size * _DTYPE.itemsize)
    provenance = envelope.get("provenance")
    spec_hash = (
        str(provenance.get("spec_hash", ""))
        if isinstance(provenance, Mapping) else ""
    )
    envelope_bytes = json.dumps(dict(envelope), sort_keys=True).encode("utf-8")
    # Per-section CRC32 checksums ride in the index header (additive:
    # files without the key still load; the envelope stays verbatim, so
    # the v2 <-> v3 byte-lossless round trip is unaffected).
    crc32 = {
        section: zlib.crc32(payloads[section])
        for section in SECTION_NAMES
    }
    crc32["envelope"] = zlib.crc32(envelope_bytes)
    index = {
        "format_version": int(format_version),
        "kind": COLUMNAR_KIND,
        "spec_hash": spec_hash,
        "nodes": list(names),
        "crc32": crc32,
    }
    index_bytes = json.dumps(index, sort_keys=True).encode("utf-8")
    data_start = _align(
        _HEADER_PREFIX_SIZE + len(index_bytes) + len(envelope_bytes)
    )
    total_size = data_start + relative

    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    with os.fdopen(fd, "wb") as handle:
        handle.write(COLUMNAR_MAGIC)
        handle.write(struct.pack("<II", len(index_bytes), len(envelope_bytes)))
        handle.write(_SECTION_TABLE.pack(*table))
        handle.write(index_bytes)
        handle.write(envelope_bytes)
        handle.write(b"\x00" * (
            data_start - _HEADER_PREFIX_SIZE - len(index_bytes)
            - len(envelope_bytes)
        ))
        position = 0
        for offset, section in zip(table[::2], SECTION_NAMES):
            handle.write(b"\x00" * (offset - position))
            payload = payloads[section]
            handle.write(payload)
            position = offset + len(payload)
        handle.write(b"\x00" * (relative - position))
    os.replace(tmp_name, path)
    assert Path(path).stat().st_size == total_size
    return path


def write_columnar_payload(
    payload: Mapping[str, object],
    path: PathLike,
    format_version: int = COLUMNAR_FORMAT_VERSION,
) -> Path:
    """Convert a parsed version-2 JSON release payload to a v3 file.

    The non-histogram envelope is stored verbatim, so converting back
    (:func:`columnar_to_json_bytes`) reproduces the canonical v2 bytes
    exactly — ``spec_hash`` and provenance are untouched.  Histograms
    are validated through :class:`CountOfCounts` on the way in; a
    corrupt payload fails here, not in some later mmap read.
    """
    check_format_version(payload, "release payload")
    if payload.get("kind") != "release":
        raise HierarchyError(
            "columnar conversion expects a release payload, got kind "
            f"{payload.get('kind')!r}"
        )
    nodes = payload.get("nodes")
    if not isinstance(nodes, Mapping) or not nodes:
        raise HierarchyError(
            "release payload has no 'nodes' histogram block to convert"
        )
    try:
        estimates = {
            str(name): CountOfCounts(np.asarray(values))
            for name, values in nodes.items()
        }
    except Exception as error:  # CountOfCounts raises HistogramError
        raise HierarchyError(
            f"malformed release histogram block: {error}"
        ) from None
    envelope = {key: value for key, value in payload.items() if key != "nodes"}
    names = sorted(estimates)
    return _write_file(
        envelope, names, _columns_from_estimates(names, estimates), path,
        format_version=format_version,
    )


def write_columnar(release: "object", path: PathLike) -> Path:
    """Write a :class:`~repro.api.release.Release` as a v3 artifact.

    Equivalent to ``write_columnar_payload(release.to_dict(), path)``
    but reuses the release's already-validated (and possibly cached)
    histogram views instead of re-parsing lists.
    """
    payload = release.to_dict()
    envelope = {key: value for key, value in payload.items() if key != "nodes"}
    names = sorted(release.estimates)
    return _write_file(
        envelope, names, _columns_from_estimates(names, release.estimates),
        path,
    )


class ColumnarReader:
    """Zero-parse, mmap-backed access to one v3 release artifact.

    Opening a reader parses only the small header; every histogram
    column is an on-demand ``np.frombuffer`` view over the shared mmap —
    no copy, no validation, no allocation proportional to artifact size.
    A reader is immutable and safe to share between threads; the serving
    tier's warm cache holds exactly these objects.

    Examples
    --------
    >>> import tempfile
    >>> from repro.api.spec import ReleaseSpec
    >>> release = ReleaseSpec.create(
    ...     "hawaiian", epsilon=2.0, max_size=50, scale=1e-4).execute()
    >>> path = tempfile.mktemp(suffix=".bin")
    >>> _ = write_columnar(release, path)
    >>> reader = ColumnarReader(path)
    >>> reader.node_names() == release.node_names()
    True
    >>> bool((reader.histogram("national") ==
    ...       release.node("national").histogram).all())
    True
    """

    def __init__(self, path: PathLike) -> None:
        # Path() construction is measurable on the cold path; keep the
        # raw argument and materialize a Path lazily (error paths only).
        self._path_raw = path
        self._path: Optional[Path] = None
        try:
            with open(path, "rb") as handle:
                prefix = handle.read(_HEADER_PREFIX_SIZE)
                if len(prefix) < _HEADER_PREFIX_SIZE or not prefix.startswith(
                    COLUMNAR_MAGIC
                ):
                    raise HierarchyError(
                        f"{self.path} is not a columnar release artifact "
                        f"(bad magic)"
                    )
                index_length, envelope_length = struct.unpack_from(
                    "<II", prefix, len(COLUMNAR_MAGIC)
                )
                self._table = _SECTION_TABLE.unpack_from(
                    prefix, len(COLUMNAR_MAGIC) + 8
                )
                self._mmap: Optional[mmap.mmap] = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except OSError as error:
            raise HierarchyError(
                f"cannot open columnar artifact {self.path}: {error}"
            ) from None
        envelope_start = _HEADER_PREFIX_SIZE + index_length
        if len(self._mmap) < envelope_start + envelope_length:
            raise HierarchyError(f"{self.path} is truncated")
        try:
            index = json.loads(self._mmap[_HEADER_PREFIX_SIZE:envelope_start])
        except ValueError as error:
            raise HierarchyError(
                f"{self.path} has a corrupt header: {error}"
            ) from None
        check_format_version(
            index, self._path_raw, supported=SUPPORTED_COLUMNAR_VERSIONS
        )
        if index.get("kind") != COLUMNAR_KIND:
            raise HierarchyError(
                f"{self.path} is not a columnar release artifact "
                f"(kind={index.get('kind')!r})"
            )
        self.format_version = int(index["format_version"])
        self.spec_hash: str = str(index.get("spec_hash", ""))
        crc32 = index.get("crc32")
        #: The recorded per-section CRC32 map, or ``None`` for files
        #: written before checksums existed (still fully readable).
        self.checksums: Optional[Dict[str, int]] = (
            {str(key): int(value) for key, value in crc32.items()}
            if isinstance(crc32, dict) else None
        )
        self._names: List[str] = index["nodes"]
        self._index: Optional[Dict[str, int]] = None
        self._envelope_span = (envelope_start, envelope_start + envelope_length)
        self._envelope: Optional[Dict[str, object]] = None
        self._data_start = _align(envelope_start + envelope_length)
        # Column views materialize lazily, one np.frombuffer per section
        # on first touch — a cold open parses the small index and nothing
        # else.
        self._columns: Dict[str, np.ndarray] = {}

    @property
    def path(self) -> Path:
        if self._path is None:
            self._path = Path(self._path_raw)
        return self._path

    def _column(self, section: str) -> np.ndarray:
        view = self._columns.get(section)
        if view is None:
            position = SECTION_NAMES.index(section)
            offset, length = self._table[2 * position: 2 * position + 2]
            if (
                length < 0 or offset < 0
                or self._data_start + offset + length * _DTYPE.itemsize
                > len(self._mmap)
            ):
                raise HierarchyError(
                    f"{self.path} has a malformed section table"
                )
            if length:
                view = np.frombuffer(
                    self._mmap, dtype=_DTYPE, count=length,
                    offset=self._data_start + offset,
                )
            else:
                view = np.empty(0, dtype=np.int64)
            self._columns[section] = view
        return view

    # -- node access ---------------------------------------------------------
    def node_names(self) -> List[str]:
        """All node names, sorted (the write-time order)."""
        return list(self._names)

    def __contains__(self, name: str) -> bool:
        if self._index is None:
            self._index = {n: i for i, n in enumerate(self._names)}
        return name in self._index

    def __len__(self) -> int:
        return len(self._names)

    def _node_index(self, name: str) -> int:
        # The name→position dict builds lazily: a cold single-node query
        # pays one list.index() instead of a dict comprehension over every
        # node of the hierarchy.
        if self._index is None:
            try:
                return self._names.index(name)
            except ValueError:
                pass
        else:
            try:
                return self._index[name]
            except KeyError:
                pass
        raise QueryError(
            f"no node {name!r} in columnar artifact "
            f"{self.spec_hash[:12]}; available: {self._names[:8]}"
        )

    def _slice(self, values: str, offsets: str, index: int) -> np.ndarray:
        table = self._column(offsets)
        return self._column(values)[table[index]:table[index + 1]]

    def histogram(self, name: str) -> np.ndarray:
        """The ``H`` column of one node (zero-copy mmap view)."""
        return self._slice("h_values", "h_offsets", self._node_index(name))

    def cumulative(self, name: str) -> np.ndarray:
        """The precomputed ``Hc`` column of one node."""
        return self._slice("hc_values", "h_offsets", self._node_index(name))

    def unattributed(self, name: str) -> np.ndarray:
        """The precomputed ``Hg`` column of one node."""
        return self._slice("hg_values", "hg_offsets", self._node_index(name))

    def suffix_sums(self, name: str) -> np.ndarray:
        """Precomputed suffix sums of ``Hg``: entry ``i`` is the exact
        total size of the ``i + 1`` largest groups (the top-share
        kernel's working array)."""
        return self._slice("tail_values", "hg_offsets", self._node_index(name))

    def num_groups(self, name: str) -> int:
        """O(1) group count of one node (scalar column, no summing)."""
        return int(self._column("num_groups")[self._node_index(name)])

    def num_entities(self, name: str) -> int:
        """O(1) entity count of one node (scalar column, no summing)."""
        return int(self._column("num_entities")[self._node_index(name)])

    def node(self, name: str) -> CountOfCounts:
        """One node's histogram with **all** derived views pre-wired.

        The returned :class:`CountOfCounts` shares the mmap's memory:
        its ``histogram``/``cumulative``/``unattributed``/``suffix_sums``
        properties return the stored columns directly, so downstream
        query kernels never recompute a representation.
        """
        index = self._node_index(name)
        h_offsets = self._column("h_offsets")
        g_offsets = self._column("hg_offsets")
        a, b = int(h_offsets[index]), int(h_offsets[index + 1])
        c, d = int(g_offsets[index]), int(g_offsets[index + 1])
        return CountOfCounts._from_views(
            self._column("h_values")[a:b],
            self._column("hc_values")[a:b],
            self._column("hg_values")[c:d],
            self._column("tail_values")[c:d],
            num_groups=int(self._column("num_groups")[index]),
            num_entities=int(self._column("num_entities")[index]),
        )

    def estimates(self) -> Dict[str, CountOfCounts]:
        """Every node as a zero-copy :class:`CountOfCounts` mapping."""
        return {name: self.node(name) for name in self._names}

    # -- artifact metadata ---------------------------------------------------
    @property
    def envelope(self) -> Dict[str, object]:
        """The v2 payload's non-histogram blocks (lazily parsed once).

        The envelope bytes sit between the index header and the data
        sections; a cold query never parses them — only full decodes
        (:meth:`to_release`, :meth:`payload`) and store metadata
        listings do.
        """
        if self._envelope is None:
            start, stop = self._envelope_span
            try:
                self._envelope = dict(json.loads(self._mmap[start:stop]))
            except ValueError as error:
                raise HierarchyError(
                    f"{self.path} has a corrupt envelope block: {error}"
                ) from None
        return self._envelope

    def query(self, query: str, node: str, **params: object) -> object:
        """Answer one consumer query straight off the mmap (cold path).

        Exactly :meth:`repro.api.release.Release.query`, but touching
        only the target node's columns — the zero-parse cold read the
        format exists for.
        """
        from repro.api.release import QUERIES, available_queries

        try:
            fn = QUERIES[query]
        except KeyError:
            raise QueryError(
                f"unknown query {query!r}; available: {available_queries()}"
            ) from None
        histogram = self.node(node)
        try:
            return fn(histogram, **params)
        except TypeError as error:
            raise QueryError(
                f"bad parameters for query {query!r}: {error}"
            ) from None

    def to_release(self) -> "object":
        """Decode into a full :class:`~repro.api.release.Release`.

        Cheap relative to the JSON path: spec/provenance parse from the
        small envelope, and every histogram is a zero-copy view — this
        is the warm → hot promotion of the serving tier.
        """
        from repro.api.release import Provenance, Release
        from repro.api.spec import ReleaseSpec

        envelope = self.envelope
        if "spec" not in envelope or "provenance" not in envelope:
            raise HierarchyError(
                f"{self.path} has no spec/provenance envelope blocks"
            )
        uncertainty = {
            str(node): float(value)
            for node, value in dict(envelope.get("uncertainty", {})).items()
        }
        return Release(
            spec=ReleaseSpec.from_dict(envelope["spec"]),
            estimates=self.estimates(),
            provenance=Provenance.from_dict(envelope["provenance"]),
            uncertainty=uncertainty,
        )

    def payload(self) -> Dict[str, object]:
        """The exact version-2 JSON payload this artifact encodes."""
        payload: Dict[str, object] = dict(self.envelope)
        payload["nodes"] = {
            name: self.histogram(name).tolist() for name in self._names
        }
        return payload

    def verify_checksums(self) -> bool:
        """Check every stored byte range against its recorded CRC32.

        Returns ``True`` when the artifact carries checksums and every
        section (and the envelope) matches, ``False`` when the file
        predates checksums (nothing to verify — old files still load),
        and raises :class:`~repro.exceptions.IntegrityError` naming the
        first mismatching section otherwise.  Cost is one ``zlib.crc32``
        sweep over the mapped bytes — no JSON parse, no array decode —
        so cold opens can afford it.
        """
        if self.checksums is None:
            return False
        start, stop = self._envelope_span
        spans: List[Tuple[str, int, int]] = [("envelope", start, stop)]
        for position, section in enumerate(SECTION_NAMES):
            offset, length = self._table[2 * position: 2 * position + 2]
            begin = self._data_start + offset
            spans.append((section, begin, begin + length * _DTYPE.itemsize))
        for label, begin, end in spans:
            recorded = self.checksums.get(label)
            if recorded is None:
                raise IntegrityError(
                    f"{self.path} records no checksum for {label!r} — "
                    "truncated or tampered checksum map"
                )
            if end > len(self._mmap):
                raise IntegrityError(f"{self.path} is truncated at {label!r}")
            actual = zlib.crc32(self._mmap[begin:end])
            if actual != recorded:
                raise IntegrityError(
                    f"{self.path}: CRC32 mismatch in section {label!r} "
                    f"(stored {recorded:#010x}, actual {actual:#010x}) — "
                    "the artifact is corrupt"
                )
        return True

    def verify(self) -> None:
        """Full integrity check of every derived column (write/migrate
        time safety net — the read path deliberately never validates).

        Raises :class:`HierarchyError` when any stored ``Hc``/``Hg``/
        suffix-sum/scalar column disagrees with its ``H`` column.
        """
        for name in self._names:
            fresh = CountOfCounts(np.array(self.histogram(name)))
            checks = (
                ("cumulative", self.cumulative(name), fresh.cumulative),
                ("unattributed", self.unattributed(name), fresh.unattributed),
                ("suffix_sums", self.suffix_sums(name), fresh.suffix_sums),
            )
            for label, stored, expected in checks:
                if not np.array_equal(stored, expected):
                    raise HierarchyError(
                        f"{self.path}: stored {label} column of node "
                        f"{name!r} disagrees with its histogram"
                    )
            if self.num_groups(name) != fresh.num_groups or (
                self.num_entities(name) != fresh.num_entities
            ):
                raise HierarchyError(
                    f"{self.path}: stored scalar columns of node {name!r} "
                    f"disagree with its histogram"
                )

    def close(self) -> None:
        """Release the mmap (best effort: live views keep it alive)."""
        mm, self._mmap = self._mmap, None
        if mm is not None:
            try:
                mm.close()
            except BufferError:
                # Exported array views still reference the buffer; the
                # OS mapping is released when the last view is dropped.
                pass

    def __enter__(self) -> "ColumnarReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ColumnarReader({str(self.path)!r}, nodes={len(self)}, "
            f"spec_hash={self.spec_hash[:12]!r})"
        )


def json_payload_from_columnar(path: PathLike) -> Dict[str, object]:
    """Read a v3 file back into its version-2 JSON payload."""
    reader = ColumnarReader(path)
    try:
        return reader.payload()
    finally:
        reader.close()


def columnar_to_json_bytes(path: PathLike) -> bytes:
    """Canonical v2 JSON bytes of a v3 artifact.

    For any artifact produced from canonical v2 bytes (everything
    :meth:`repro.api.release.Release.save` or the store writes), this is
    **byte-identical** to the original file — the lossless round trip
    ``tests/io`` locks down.
    """
    text = json.dumps(json_payload_from_columnar(path), sort_keys=True)
    return text.encode("utf-8")
