"""JSON serialization of hierarchies and releases (the interchange format).

Publishers need releases as files: this module writes and reads

* **hierarchy JSON** — the full region tree with one histogram per node
  (used to persist datasets and releases losslessly);
* **release CSV** — flat ``region,size,count`` rows in the style of the
  Census Summary File tables the paper targets (zero counts omitted).

Only histograms — never raw entity data — are serialized, so a saved
*release* stays differentially private.  Saving a *true* (non-private)
hierarchy is supported for dataset persistence and is clearly named.

JSON is the **interchange** format: ``spec_hash`` and provenance bytes
are defined over the version-2 canonical JSON, and the binary columnar
format (:mod:`repro.io.columnar`, format v3) round-trips to it
losslessly.  A tool that can read version-2 JSON can read everything.
"""

from __future__ import annotations

import csv
import hashlib
import json
from pathlib import Path
from typing import Dict, Mapping, Sequence, Union

import numpy as np

from repro.core.histogram import CountOfCounts
from repro.exceptions import HierarchyError
from repro.hierarchy.tree import Hierarchy, Node

PathLike = Union[str, Path]

#: Format version written into every JSON file.  Version 2 adds the
#: declarative-release keys (``spec``, ``provenance``, ``uncertainty``)
#: written by :mod:`repro.api`; the reading side accepts both versions
#: because every version-1 file is a valid version-2 file without them.
FORMAT_VERSION = 2

#: Versions this build of the library can read.
SUPPORTED_FORMAT_VERSIONS = (1, 2)


def check_format_version(
    payload: Mapping[str, object],
    source: object,
    supported: Sequence[int] = SUPPORTED_FORMAT_VERSIONS,
) -> int:
    """Validate a payload's ``format_version``; returns the version.

    Files written by a *newer* library than this one are rejected with a
    clear :class:`HierarchyError` instead of being best-effort parsed —
    a future format may change the meaning of existing keys, and a
    silently wrong release is worse than no release.

    ``supported`` defaults to the JSON interchange versions; the binary
    columnar reader passes its own set so a hypothetical v4 binary file
    is rejected with the same message shape.

    Examples
    --------
    >>> check_format_version({"format_version": 1}, "x.json")
    1
    """
    version = payload.get("format_version", 1)
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise HierarchyError(
            f"{source} has an invalid format_version {version!r}; "
            f"expected an integer >= 1"
        )
    if version > max(supported):
        raise HierarchyError(
            f"{source} has format_version {version}, newer than the "
            f"latest supported version {max(supported)}; "
            "upgrade the library to read this file"
        )
    if version not in supported:
        raise HierarchyError(
            f"{source} has format_version {version}; this reader "
            f"supports versions {tuple(supported)}"
        )
    return version


def _node_to_dict(node: Node) -> dict:
    payload: dict = {"name": node.name}
    if node.is_leaf:
        payload["histogram"] = node.data.histogram.tolist()
    else:
        payload["children"] = [_node_to_dict(child) for child in node.children]
    return payload


def _node_from_dict(payload: dict) -> Node:
    name = payload.get("name")
    if not isinstance(name, str):
        raise HierarchyError("node payload is missing a string 'name'")
    if "children" in payload:
        node = Node(name)
        children = payload["children"]
        if not children:
            raise HierarchyError(f"internal node {name!r} has no children")
        for child in children:
            node.add_child(_node_from_dict(child))
        return node
    if "histogram" not in payload:
        raise HierarchyError(f"leaf {name!r} has no histogram")
    return Node(name, CountOfCounts(np.asarray(payload["histogram"])))


def save_hierarchy(hierarchy: Hierarchy, path: PathLike) -> None:
    """Write a hierarchy (leaf histograms + structure) as JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "hierarchy",
        "root": _node_to_dict(hierarchy.root),
    }
    Path(path).write_text(json.dumps(payload))


def load_hierarchy(path: PathLike) -> Hierarchy:
    """Read a hierarchy written by :func:`save_hierarchy`.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.hierarchy import from_leaf_histograms
    >>> tree = from_leaf_histograms("US", {"VA": [0, 2]})
    >>> path = tempfile.mktemp(suffix=".json")
    >>> save_hierarchy(tree, path)
    >>> load_hierarchy(path).root.num_groups
    2
    >>> os.unlink(path)
    """
    payload = json.loads(Path(path).read_text())
    check_format_version(payload, path)
    if payload.get("kind") != "hierarchy":
        raise HierarchyError(f"{path} is not a hierarchy file")
    return Hierarchy(_node_from_dict(payload["root"]), validate=False)


def hierarchy_fingerprint(hierarchy: Hierarchy) -> str:
    """Stable content hash of a hierarchy (structure + leaf histograms).

    The experiment engine's on-disk result cache (:mod:`repro.engine.cache`)
    keys cached cells by this fingerprint so that results computed for one
    dataset are never served for another.  The hash is a SHA-256 over the
    canonical JSON serialization used by :func:`save_hierarchy`, so it is
    stable across processes and Python versions (unlike the built-in
    ``hash``, which is salted per process).

    Examples
    --------
    >>> from repro.hierarchy import from_leaf_histograms
    >>> a = from_leaf_histograms("US", {"VA": [0, 2]})
    >>> b = from_leaf_histograms("US", {"VA": [0, 2]})
    >>> hierarchy_fingerprint(a) == hierarchy_fingerprint(b)
    True
    """
    payload = json.dumps(_node_to_dict(hierarchy.root), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def save_release(
    estimates: Mapping[str, CountOfCounts],
    path: PathLike,
    metadata: Mapping[str, object] = (),
) -> None:
    """Write a per-node release as JSON (histograms keyed by node name).

    ``metadata`` (e.g. epsilon, method, date) is stored alongside.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "release",
        "metadata": dict(metadata),
        "nodes": {
            name: histogram.histogram.tolist()
            for name, histogram in estimates.items()
        },
    }
    Path(path).write_text(json.dumps(payload))


def load_release(path: PathLike) -> Dict[str, CountOfCounts]:
    """Read a release written by :func:`save_release`.

    Also reads the histogram block of the richer version-2 artifacts
    written by :meth:`repro.api.release.Release.save` (which bundle a
    spec and provenance on top of the same ``nodes`` mapping).
    """
    payload = json.loads(Path(path).read_text())
    check_format_version(payload, path)
    if payload.get("kind") != "release":
        raise HierarchyError(f"{path} is not a release file")
    return {
        name: CountOfCounts(np.asarray(values))
        for name, values in payload["nodes"].items()
    }


def release_metadata(path: PathLike) -> Dict[str, object]:
    """Metadata stored in a release file."""
    payload = json.loads(Path(path).read_text())
    check_format_version(payload, path)
    if payload.get("kind") != "release":
        raise HierarchyError(f"{path} is not a release file")
    return dict(payload.get("metadata", {}))


def export_release_csv(
    estimates: Mapping[str, CountOfCounts], path: PathLike
) -> int:
    """Write ``region,size,count`` rows (nonzero cells only); returns the
    number of data rows written — the Summary-File-style flat table."""
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["region", "size", "count"])
        for name in sorted(estimates):
            histogram = estimates[name].histogram
            for size in np.nonzero(histogram)[0]:
                writer.writerow([name, int(size), int(histogram[size])])
                rows += 1
    return rows


def import_release_csv(path: PathLike) -> Dict[str, CountOfCounts]:
    """Read a CSV written by :func:`export_release_csv`."""
    cells: Dict[str, Dict[int, int]] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            region = row["region"]
            cells.setdefault(region, {})[int(row["size"])] = int(row["count"])
    result: Dict[str, CountOfCounts] = {}
    for region, sparse in cells.items():
        length = max(sparse) + 1
        histogram = np.zeros(length, dtype=np.int64)
        for size, count in sparse.items():
            histogram[size] = count
        result[region] = CountOfCounts(histogram)
    return result
