"""Working with truncated Summary-File-style tables (Section 6.1).

The 2010 Census Summary File 1 published household-size tables truncated
at size 7 ("7-or-more persons") because no formal privacy method existed
for the full distribution — the exact gap this paper fills.  This module
implements both directions of the paper's data recipe on *user-supplied*
tables:

* :func:`load_truncated_table` — read ``region,size,count`` CSV rows where
  the largest size bucket is a "size or more" catch-all;
* :func:`extend_tail` — the paper's §6.1 construction: estimate the decay
  ratio r = H[top]/H[top-1] and sample Binomial(H[k-1], r) counts for every
  k past the truncation point, redistributing the catch-all bucket;
* :func:`build_hierarchy` — assemble extended regions into the 2-level
  hierarchy the estimators consume.

With real SF1 extracts these functions reproduce the paper's partially
synthetic housing dataset from first principles; our
:class:`~repro.datasets.synthetic_housing.SyntheticHousingDataset` is this
recipe applied to a synthetic base table.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.histogram import CountOfCounts, validate_histogram
from repro.exceptions import HistogramError
from repro.hierarchy.build import from_leaf_histograms
from repro.hierarchy.tree import Hierarchy

PathLike = Union[str, Path]

#: Hard ceiling on the sampled tail, mirroring the paper's outlier cap.
MAX_TAIL_SIZE = 100_000


def load_truncated_table(path: PathLike) -> Dict[str, np.ndarray]:
    """Read ``region,size,count`` CSV rows into per-region histograms.

    The maximum size present for each region is interpreted as that
    region's "size or more" catch-all bucket (as in SF1's "7-or-more
    person household" column); :func:`extend_tail` redistributes it.
    """
    cells: Dict[str, Dict[int, int]] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"region", "size", "count"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise HistogramError(
                f"{path} must have columns {sorted(required)}, "
                f"found {reader.fieldnames}"
            )
        for row in reader:
            size = int(row["size"])
            count = int(row["count"])
            if size < 0 or count < 0:
                raise HistogramError(
                    f"negative size/count in {path}: {row}"
                )
            cells.setdefault(row["region"], {})[size] = count

    histograms: Dict[str, np.ndarray] = {}
    for region, sparse in cells.items():
        histogram = np.zeros(max(sparse) + 1, dtype=np.int64)
        for size, count in sparse.items():
            histogram[size] = count
        histograms[region] = histogram
    return histograms


def extend_tail(
    histogram: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    max_ratio: float = 0.95,
) -> np.ndarray:
    """Replace the top catch-all bucket with a sampled geometric-like tail.

    Implements §6.1: with T the largest size, the paper estimates the decay
    ratio r = H[T]/H[T-1] (clipped below 1 so the tail provably dies out)
    and draws ``H[k] ~ Binomial(H[k-1], r)`` for k > T until the counts hit
    zero.  The T bucket itself is re-sampled the same way so the total
    group count is preserved: all leftover catch-all mass stays at T.

    Examples
    --------
    >>> extended = extend_tail(np.array([0, 50, 20, 10]),
    ...                        rng=np.random.default_rng(0))
    >>> int(extended.sum())   # group count preserved
    80
    >>> extended.size > 4     # tail extended beyond the truncation point
    True
    """
    histogram = validate_histogram(histogram)
    rng = rng if rng is not None else np.random.default_rng()
    top = int(np.nonzero(histogram)[0][-1]) if histogram.any() else 0
    if top < 2 or histogram[top - 1] == 0:
        return histogram.copy()  # nothing to extrapolate from

    ratio = min(float(histogram[top]) / float(histogram[top - 1]), max_ratio)
    catch_all = int(histogram[top])

    tail = []
    previous = catch_all
    size = top + 1
    remaining = catch_all
    while previous > 0 and size <= MAX_TAIL_SIZE:
        current = min(int(rng.binomial(previous, ratio)), remaining)
        if current == 0:
            break
        tail.append(current)
        remaining -= current
        previous = current
        size += 1

    extended = np.zeros(top + 1 + len(tail), dtype=np.int64)
    extended[: histogram.size] = histogram
    extended[top] = catch_all - sum(tail)  # leftover mass stays at T
    for offset, count in enumerate(tail):
        extended[top + 1 + offset] = count
    return extended


def build_hierarchy(
    histograms: Dict[str, np.ndarray],
    root_name: str = "national",
    extend: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Hierarchy:
    """Assemble per-region histograms into a 2-level hierarchy.

    With ``extend=True`` (default) every region's catch-all bucket is first
    replaced by a sampled tail via :func:`extend_tail`.
    """
    if not histograms:
        raise HistogramError("no regions to build a hierarchy from")
    rng = rng if rng is not None else np.random.default_rng()
    spec = {
        region: CountOfCounts(
            extend_tail(histogram, rng=rng) if extend else histogram
        )
        for region, histogram in sorted(histograms.items())
    }
    return from_leaf_histograms(root_name, spec)
