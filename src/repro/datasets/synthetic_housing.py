"""The partially synthetic housing dataset (Section 6.1).

The paper starts from the 2010 Census Summary File 1 household-size tables
(truncated at size 7), then synthesizes the heavy tail the truncation
removed:

1. per state, estimate the ratio r = (#households of size 7)/(#size 6);
2. for every k >= 8, draw the number of size-k groups from a binomial so
   the same ratio holds in expectation between neighboring sizes;
3. add 50 outlier groups with sizes uniform in [1, 10000] (group quarters:
   dormitories, barracks, correctional facilities);
4. assign each state's groups to its counties proportionally to county size.

We reproduce this construction directly.  The SF1 base counts are replaced
by a standard household-size profile (≈ 2010 national shares) spread across
52 "states" with a skewed population distribution; everything past step 1 is
the paper's own recipe.  ``scale`` rescales the total number of households
(``scale=1.0`` ≈ the paper's 240.9M groups; the default keeps benchmarks
laptop-sized).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.histogram import CountOfCounts, pad_histogram
from repro.datasets.base import DatasetGenerator
from repro.exceptions import EstimationError
from repro.hierarchy.build import from_leaf_histograms
from repro.hierarchy.tree import Hierarchy

#: Approximate 2010 national share of households by size 1..7.
_HOUSEHOLD_SHARES = np.array(
    [0.267, 0.336, 0.158, 0.137, 0.063, 0.024, 0.015], dtype=np.float64
)

#: Paper-scale number of households (order of magnitude of 2010 SF1).
_PAPER_TOTAL_GROUPS = 240_908_081

#: Number of large outlier facilities added nationally (paper: 50).
_NUM_OUTLIERS = 50

#: Outlier sizes are uniform in [1, _OUTLIER_MAX] (paper: 10,000).
_OUTLIER_MAX = 10_000

#: 50 states + Puerto Rico + District of Columbia.
_NUM_STATES = 52

#: States on the west coast, used by the paper's 3-level experiments.
WEST_COAST_STATES = ("state01", "state02", "state03")


class SyntheticHousingDataset(DatasetGenerator):
    """National/State/County hierarchy of household and facility sizes.

    Parameters
    ----------
    scale:
        Fraction of the paper's 240.9M groups to generate (default 1/1000).
    levels:
        2 for National/State, 3 to add the County level.
    counties_per_state:
        Upper bound on counties per state when ``levels == 3`` (the actual
        number varies per state between 3 and this bound).

    Examples
    --------
    >>> tree = SyntheticHousingDataset(scale=1e-5).build(seed=1)
    >>> tree.num_levels
    2
    >>> tree.root.num_groups > 1000
    True
    """

    name = "housing"

    def __init__(
        self,
        scale: float = 1e-3,
        levels: int = 2,
        counties_per_state: int = 20,
    ) -> None:
        if scale <= 0 or scale > 1.0:
            raise EstimationError(f"scale must be in (0, 1], got {scale}")
        if levels not in (2, 3):
            raise EstimationError(f"levels must be 2 or 3, got {levels}")
        if counties_per_state < 3:
            raise EstimationError("counties_per_state must be >= 3")
        self.scale = float(scale)
        self.levels = int(levels)
        self.counties_per_state = int(counties_per_state)

    # -- state-level construction ------------------------------------------------
    def _state_weights(self, rng: np.random.Generator) -> np.ndarray:
        """Skewed population shares across the 52 states (Zipf-like)."""
        ranks = np.arange(1, _NUM_STATES + 1, dtype=np.float64)
        weights = 1.0 / ranks**0.8
        rng.shuffle(weights)
        return weights / weights.sum()

    def _state_histogram(
        self, total_households: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sizes 1..7 from the share profile, then the binomial tail."""
        base = np.zeros(8, dtype=np.int64)  # index = household size
        shares = _HOUSEHOLD_SHARES * (
            1.0 + 0.1 * rng.standard_normal(_HOUSEHOLD_SHARES.size)
        )
        shares = np.clip(shares, 0.001, None)
        shares = shares / shares.sum()
        base[1:8] = rng.multinomial(total_households, shares)

        counts: List[int] = list(base)
        if base[6] > 0 and base[7] > 0:
            # Clip the ratio below 1 so the tail provably dies out; real SF1
            # data always has #size7 < #size6.
            ratio = min(float(base[7]) / float(base[6]), 0.95)
            previous = int(base[7])
            size = 8
            while previous > 0 and size <= _OUTLIER_MAX:
                current = int(rng.binomial(previous, ratio))
                counts.append(current)
                previous = current
                size += 1
        histogram = np.asarray(counts, dtype=np.int64)
        return np.trim_zeros(histogram, trim="b") if histogram.any() else histogram[:1]

    # -- county-level split ------------------------------------------------------
    def _split_counties(
        self, histogram: np.ndarray, rng: np.random.Generator
    ) -> List[np.ndarray]:
        """Assign a state's groups to counties proportionally to county size."""
        num_counties = int(rng.integers(3, self.counties_per_state + 1))
        county_weights = rng.dirichlet(np.full(num_counties, 2.0))
        county_histograms = [
            np.zeros(histogram.size, dtype=np.int64) for _ in range(num_counties)
        ]
        for size, count in enumerate(histogram):
            if count == 0:
                continue
            split = rng.multinomial(int(count), county_weights)
            for county_index, amount in enumerate(split):
                county_histograms[county_index][size] = amount
        return [
            np.trim_zeros(h, trim="b") if h.any() else h[:1]
            for h in county_histograms
        ]

    # -- public API ----------------------------------------------------------------
    def build(self, seed: int = 0) -> Hierarchy:
        rng = self._rng(seed)
        total_groups = max(_NUM_STATES * 10, int(_PAPER_TOTAL_GROUPS * self.scale))
        weights = self._state_weights(rng)

        state_histograms: Dict[str, np.ndarray] = {}
        for index in range(_NUM_STATES):
            name = f"state{index + 1:02d}"
            households = max(10, int(round(total_groups * weights[index])))
            state_histograms[name] = self._state_histogram(households, rng)

        # 50 outlier facilities with sizes uniform in [1, 10000], placed in
        # states chosen proportionally to population.
        outlier_states = rng.choice(
            _NUM_STATES, size=_NUM_OUTLIERS, p=weights
        )
        outlier_sizes = rng.integers(1, _OUTLIER_MAX + 1, size=_NUM_OUTLIERS)
        for state_index, size in zip(outlier_states, outlier_sizes):
            name = f"state{state_index + 1:02d}"
            histogram = state_histograms[name]
            if histogram.size <= size:
                histogram = pad_histogram(histogram, int(size) + 1)
            histogram[int(size)] += 1
            state_histograms[name] = histogram

        if self.levels == 2:
            spec = {
                name: CountOfCounts(histogram)
                for name, histogram in state_histograms.items()
            }
            return from_leaf_histograms("national", spec)

        spec3: Dict[str, Dict[str, CountOfCounts]] = {}
        for name, histogram in state_histograms.items():
            counties = self._split_counties(histogram, rng)
            spec3[name] = {
                f"{name}-county{j + 1:02d}": CountOfCounts(county)
                for j, county in enumerate(counties)
            }
        return from_leaf_histograms("national", spec3)

    def west_coast(self, seed: int = 0) -> Hierarchy:
        """The paper's 3-level west-coast restriction (3 states + counties)."""
        full = SyntheticHousingDataset(
            scale=self.scale, levels=3,
            counties_per_state=self.counties_per_state,
        ).build(seed=seed)
        root = full.root
        keep = [c for c in root.children if c.name in WEST_COAST_STATES]
        from repro.hierarchy.tree import Node  # local to avoid cycle at import

        new_root = Node("west-coast")
        for child in keep:
            clone = full.subtree(child.name).root
            new_root.add_child(clone)
        return Hierarchy(new_root, validate=False)
