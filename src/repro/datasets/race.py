"""Census-block race-distribution datasets (Section 6.1).

In the paper, each Census *block* is a group and its size is the number of
people of a given race living in it, from 2010 SF1.  Two races bracket the
difficulty spectrum:

* **White** — ~226M people over 11.16M blocks: sizes densely populate
  0..~3000 ("dense" data, where the Hc method shines);
* **Hawaiian** — ~540K people over the same blocks: the vast majority of
  blocks have size 0 and only ~224 distinct sizes exist ("sparse" data).

The generator reproduces these shapes: per-block sizes are drawn from a
log-normal (white) or a zero-inflated geometric (hawaiian), then blocks are
partitioned into a National/State(/County) hierarchy.  ``scale`` rescales
the 11.16M block count.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.histogram import CountOfCounts
from repro.datasets.base import DatasetGenerator
from repro.exceptions import EstimationError
from repro.hierarchy.build import from_leaf_histograms
from repro.hierarchy.tree import Hierarchy, Node

#: Paper-scale number of Census blocks.
_PAPER_TOTAL_BLOCKS = 11_155_486

#: 50 states + Puerto Rico + DC.
_NUM_STATES = 52

#: States forming the paper's west-coast 3-level restriction.
WEST_COAST_STATES = ("state01", "state02", "state03")

#: White: log-normal person counts, mean ≈ 20 people/block, tail to ~3000.
_WHITE_MU = 2.4
_WHITE_SIGMA = 1.1

#: Hawaiian: ~95% of blocks empty, small geometric counts elsewhere.
_HAWAIIAN_ZERO_PROB = 0.95
_HAWAIIAN_GEOM_P = 0.35


class RaceDataset(DatasetGenerator):
    """Blocks-as-groups race counts with a National/State(/County) hierarchy.

    Parameters
    ----------
    race:
        ``"white"`` (dense) or ``"hawaiian"`` (sparse).
    scale:
        Fraction of the paper's 11.16M blocks (default 1/100).
    levels:
        2 for National/State, 3 to add counties.
    counties_per_state:
        Upper bound on counties per state when ``levels == 3``.

    Examples
    --------
    >>> tree = RaceDataset("hawaiian", scale=1e-4).build(seed=5)
    >>> tree.root.data.histogram[0] > 0   # most blocks are empty
    True
    """

    def __init__(
        self,
        race: str = "white",
        scale: float = 1e-2,
        levels: int = 2,
        counties_per_state: int = 12,
    ) -> None:
        if race not in ("white", "hawaiian"):
            raise EstimationError(f"race must be 'white' or 'hawaiian', got {race!r}")
        if scale <= 0 or scale > 1.0:
            raise EstimationError(f"scale must be in (0, 1], got {scale}")
        if levels not in (2, 3):
            raise EstimationError(f"levels must be 2 or 3, got {levels}")
        self.race = race
        self.name = race
        self.scale = float(scale)
        self.levels = int(levels)
        self.counties_per_state = int(counties_per_state)

    def _block_sizes(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if self.race == "white":
            sizes = rng.lognormal(_WHITE_MU, _WHITE_SIGMA, size=count)
            return np.rint(sizes).astype(np.int64)
        empty = rng.random(count) < _HAWAIIAN_ZERO_PROB
        sizes = rng.geometric(_HAWAIIAN_GEOM_P, size=count).astype(np.int64)
        sizes[empty] = 0
        return sizes

    def build(self, seed: int = 0) -> Hierarchy:
        rng = self._rng(seed)
        total_blocks = max(_NUM_STATES * 20,
                           int(_PAPER_TOTAL_BLOCKS * self.scale))

        ranks = np.arange(1, _NUM_STATES + 1, dtype=np.float64)
        weights = 1.0 / ranks**0.8
        rng.shuffle(weights)
        weights = weights / weights.sum()
        blocks_per_state = rng.multinomial(total_blocks, weights)

        if self.levels == 2:
            spec: Dict[str, CountOfCounts] = {}
            for index in range(_NUM_STATES):
                name = f"state{index + 1:02d}"
                sizes = self._block_sizes(int(blocks_per_state[index]), rng)
                spec[name] = CountOfCounts.from_sizes(sizes)
            return from_leaf_histograms("national", spec)

        spec3: Dict[str, Dict[str, CountOfCounts]] = {}
        for index in range(_NUM_STATES):
            name = f"state{index + 1:02d}"
            num_counties = int(rng.integers(3, self.counties_per_state + 1))
            county_weights = rng.dirichlet(np.full(num_counties, 2.0))
            split = rng.multinomial(int(blocks_per_state[index]), county_weights)
            spec3[name] = {
                f"{name}-county{j + 1:02d}": CountOfCounts.from_sizes(
                    self._block_sizes(int(split[j]), rng)
                )
                for j in range(num_counties)
            }
        return from_leaf_histograms("national", spec3)

    def west_coast(self, seed: int = 0) -> Hierarchy:
        """3-level hierarchy restricted to three states (paper Section 6.2.5)."""
        full = RaceDataset(
            race=self.race, scale=self.scale, levels=3,
            counties_per_state=self.counties_per_state,
        ).build(seed=seed)
        new_root = Node("west-coast")
        for child in full.root.children:
            if child.name in WEST_COAST_STATES:
                new_root.add_child(full.subtree(child.name).root)
        return Hierarchy(new_root, validate=False)
