"""Workload generators mirroring the paper's four evaluation datasets.

The paper evaluates on (Section 6.1):

* **partially synthetic housing** — 2010 Census households/group-quarters
  per state with a synthesized heavy tail (the published tables truncate at
  size 7) plus 50 large outlier facilities;
* **NYC taxi** — 2013 Manhattan pickups per medallion per neighborhood;
* **race distributions** — White (dense sizes) and Hawaiian (sparse sizes)
  per Census block.

The Census/taxi raw files are not redistributable here, so each generator
synthesizes data with the same construction recipe (housing) or matched
summary statistics and shape (taxi, race) — see docs/architecture.md for the
substitution argument.  All generators are deterministic given a seed and
accept a ``scale`` factor so benchmarks run at laptop scale while
``scale=1.0`` approximates paper magnitude.
"""

from repro.datasets.base import DatasetGenerator, hierarchy_to_database
from repro.datasets.race import RaceDataset
from repro.datasets.registry import available_datasets, make_dataset
from repro.datasets.sf1 import build_hierarchy, extend_tail, load_truncated_table
from repro.datasets.synthetic_housing import SyntheticHousingDataset
from repro.datasets.taxi import TaxiDataset

__all__ = [
    "DatasetGenerator",
    "RaceDataset",
    "SyntheticHousingDataset",
    "TaxiDataset",
    "available_datasets",
    "build_hierarchy",
    "extend_tail",
    "hierarchy_to_database",
    "load_truncated_table",
    "make_dataset",
]
