"""Name-based dataset registry used by benchmarks and examples."""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.base import DatasetGenerator
from repro.datasets.race import RaceDataset
from repro.datasets.synthetic_housing import SyntheticHousingDataset
from repro.datasets.taxi import TaxiDataset
from repro.exceptions import EstimationError


def make_dataset(name: str, **kwargs) -> DatasetGenerator:
    """Instantiate a dataset generator by registry name.

    Recognized names: ``housing``, ``taxi``, ``white``, ``hawaiian``.
    Keyword arguments are forwarded to the generator's constructor.

    Examples
    --------
    >>> make_dataset("hawaiian", scale=1e-4).race
    'hawaiian'
    """
    name = name.lower()
    if name == "housing":
        return SyntheticHousingDataset(**kwargs)
    if name == "taxi":
        return TaxiDataset(**kwargs)
    if name in ("white", "hawaiian"):
        return RaceDataset(race=name, **kwargs)
    raise EstimationError(
        f"unknown dataset {name!r}; available: {available_datasets()}"
    )


def available_datasets() -> List[str]:
    """Registry names, matching the paper's four evaluation datasets."""
    return ["housing", "white", "hawaiian", "taxi"]
