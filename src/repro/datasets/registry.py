"""Name-based dataset registry used by benchmarks, examples and the CLI.

Two name families resolve here:

* the paper's evaluation datasets (``housing``, ``taxi``, ``white``,
  ``hawaiian`` — Section 6.1), and
* generated scenarios, addressed as ``workload:<registered name>`` and
  served by the synthetic workload subsystem (:mod:`repro.workloads`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.base import DatasetGenerator
from repro.datasets.race import RaceDataset
from repro.datasets.synthetic_housing import SyntheticHousingDataset
from repro.datasets.taxi import TaxiDataset
from repro.exceptions import EstimationError

#: Prefix that routes a registry name to the workload subsystem.
WORKLOAD_PREFIX = "workload:"


def make_dataset(name: str, **kwargs) -> DatasetGenerator:
    """Instantiate a dataset generator by registry name.

    Recognized names: ``housing``, ``taxi``, ``white``, ``hawaiian``, and
    ``workload:<name>`` for any registered synthetic workload.  Keyword
    arguments are forwarded to the generator's constructor; for workloads
    the hierarchy depth is fixed by the spec, so a ``levels`` argument is
    accepted for CLI-surface compatibility but must be ``None`` or match
    the spec's depth.

    Examples
    --------
    >>> make_dataset("hawaiian", scale=1e-4).race
    'hawaiian'
    >>> make_dataset("workload:golden-small").spec.depth
    4
    """
    if name.lower().startswith(WORKLOAD_PREFIX):
        # Imported lazily: repro.workloads depends on the engine layer,
        # which this module must not pull in at import time.  Only the
        # prefix is case-normalized — registered workload names are
        # case-sensitive.
        from repro.workloads.dataset import WorkloadDataset
        from repro.workloads.spec import get_workload

        spec = get_workload(name[len(WORKLOAD_PREFIX):])
        levels = kwargs.pop("levels", None)
        if levels is not None and int(levels) != spec.depth:
            raise EstimationError(
                f"workload {spec.name!r} has a fixed depth of {spec.depth} "
                f"levels; remove the conflicting levels={levels} argument"
            )
        return WorkloadDataset(spec, **kwargs)
    name = name.lower()
    if name == "housing":
        return SyntheticHousingDataset(**kwargs)
    if name == "taxi":
        return TaxiDataset(**kwargs)
    if name in ("white", "hawaiian"):
        return RaceDataset(race=name, **kwargs)
    raise EstimationError(
        f"unknown dataset {name!r}; available: {available_datasets()} "
        f"plus '{WORKLOAD_PREFIX}<name>' for registered workloads"
    )


def available_datasets() -> List[str]:
    """Registry names, matching the paper's four evaluation datasets.

    Generated scenarios are additional to these; list them with
    :func:`repro.workloads.available_workloads` and address them as
    ``workload:<name>``.
    """
    return ["housing", "white", "hawaiian", "taxi"]
