"""The NYC-taxi-like dataset (Section 6.1).

In the paper, a *group* is a taxi medallion within a region and its *size*
is the number of passenger pickups it had there, over 143.5M Manhattan trips
from the 2013 NYC taxi data.  The hierarchy is Manhattan (level 0) →
upper/lower Manhattan (level 1) → 28 NTA neighborhoods (level 2).

The raw trip records are not shipped here; the generator synthesizes
medallion-per-neighborhood pickup counts from a log-normal distribution
calibrated to the paper's summary statistics — 360,872 groups, ~131M
pickups (mean ≈ 363 pickups per group) and ~3,128 distinct sizes — which
gives the dense, heavy-tailed size distribution the estimators actually
react to.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.histogram import CountOfCounts
from repro.datasets.base import DatasetGenerator
from repro.exceptions import EstimationError
from repro.hierarchy.build import from_leaf_histograms
from repro.hierarchy.tree import Hierarchy

#: Paper-scale number of (medallion, neighborhood) groups.
_PAPER_TOTAL_GROUPS = 360_872

#: Number of NTA neighborhoods at the leaf level (paper: 28, 14 per half).
_NUM_NEIGHBORHOODS = 28

#: Log-normal pickup-count parameters chosen so the mean group size is
#: ≈ 363 pickups (exp(mu + sigma^2/2) ≈ 363) with a heavy tail reaching the
#: thousands, matching the paper's ~3128 distinct sizes at full scale.
_LOGNORMAL_MU = 5.05
_LOGNORMAL_SIGMA = 1.05


class TaxiDataset(DatasetGenerator):
    """Manhattan → upper/lower → 28 neighborhoods, pickups per medallion.

    Parameters
    ----------
    scale:
        Fraction of the paper's 360,872 groups to generate (default 0.1 —
        the taxi dataset is small enough to run near paper scale).
    levels:
        2 for Manhattan/halves, 3 to include the neighborhood level (the
        paper's taxi experiments always use the full 3-level geography).

    Examples
    --------
    >>> tree = TaxiDataset(scale=0.01).build(seed=3)
    >>> tree.num_levels
    3
    >>> len(tree.leaves())
    28
    """

    name = "taxi"

    def __init__(self, scale: float = 0.1, levels: int = 3) -> None:
        if scale <= 0 or scale > 1.0:
            raise EstimationError(f"scale must be in (0, 1], got {scale}")
        if levels not in (2, 3):
            raise EstimationError(f"levels must be 2 or 3, got {levels}")
        self.scale = float(scale)
        self.levels = int(levels)

    def build(self, seed: int = 0) -> Hierarchy:
        rng = self._rng(seed)
        total_groups = max(_NUM_NEIGHBORHOODS * 20,
                           int(_PAPER_TOTAL_GROUPS * self.scale))

        # Neighborhood shares: busy midtown-like zones get most medallions.
        shares = rng.dirichlet(np.full(_NUM_NEIGHBORHOODS, 1.5))
        counts = rng.multinomial(total_groups, shares)

        neighborhoods: Dict[str, CountOfCounts] = {}
        for index in range(_NUM_NEIGHBORHOODS):
            half = "upper" if index < _NUM_NEIGHBORHOODS // 2 else "lower"
            name = f"{half}-nta{index + 1:02d}"
            # Busier neighborhoods also see more pickups per medallion.
            mu = _LOGNORMAL_MU + 0.4 * np.log(
                shares[index] * _NUM_NEIGHBORHOODS + 0.25
            )
            sizes = rng.lognormal(mu, _LOGNORMAL_SIGMA, size=int(counts[index]))
            sizes = np.maximum(1, np.rint(sizes)).astype(np.int64)
            neighborhoods[name] = CountOfCounts.from_sizes(sizes)

        if self.levels == 2:
            upper = sum(
                (h for n, h in neighborhoods.items() if n.startswith("upper")),
                CountOfCounts([0]),
            )
            lower = sum(
                (h for n, h in neighborhoods.items() if n.startswith("lower")),
                CountOfCounts([0]),
            )
            return from_leaf_histograms(
                "manhattan", {"upper": upper, "lower": lower}
            )

        spec = {
            "upper": {
                name: hist for name, hist in neighborhoods.items()
                if name.startswith("upper")
            },
            "lower": {
                name: hist for name, hist in neighborhoods.items()
                if name.startswith("lower")
            },
        }
        return from_leaf_histograms("manhattan", spec)
