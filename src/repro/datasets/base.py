"""Dataset generator interface and relational export.

A :class:`DatasetGenerator` builds a :class:`~repro.hierarchy.tree.Hierarchy`
with true histograms at every node.  :func:`hierarchy_to_database` converts a
(small) hierarchy back into the paper's three-table relational form so the
db pipeline can be exercised end-to-end in tests and examples.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.db.schema import Database, level_column
from repro.db.table import Table
from repro.exceptions import HierarchyError
from repro.hierarchy.tree import Hierarchy, Node


class DatasetGenerator(abc.ABC):
    """Deterministic synthetic workload generator.

    Subclasses set :attr:`name` and implement :meth:`build`, which must be a
    pure function of the constructor parameters and the ``seed``.
    """

    #: Registry name of the dataset.
    name: str = "base"

    @abc.abstractmethod
    def build(self, seed: int = 0) -> Hierarchy:
        """Generate the hierarchy with true histograms at every node."""

    def _rng(self, seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def hierarchy_to_database(hierarchy: Hierarchy) -> Database:
    """Materialize a hierarchy as Entities / Groups / Hierarchy tables.

    Intended for small hierarchies (tests, examples, documentation): the
    Entities table has one row per entity, so paper-scale data would not
    fit.  Leaf names become region ids; internal levels are named by the
    path of ancestors.

    Raises
    ------
    HierarchyError
        If leaves are not all at the same depth (the relational schema
        requires a uniform number of levels).
    """
    leaves = hierarchy.leaves()
    depths = {leaf.level for leaf in leaves}
    if len(depths) != 1:
        raise HierarchyError(
            f"relational export requires uniform leaf depth, found {depths}"
        )
    num_levels = depths.pop() + 1

    region_ids: List[str] = []
    level_labels: List[List[str]] = [[] for _ in range(num_levels)]
    group_ids: List[int] = []
    group_regions: List[str] = []
    entity_groups: List[int] = []

    next_group = 0
    for leaf in leaves:
        region_ids.append(leaf.name)
        ancestors: List[str] = []
        node: Optional[Node] = leaf
        while node is not None:
            ancestors.append(node.name)
            node = node.parent
        ancestors.reverse()  # root ... leaf
        for level in range(num_levels):
            level_labels[level].append(ancestors[level])

        for size in leaf.data.unattributed:
            group_ids.append(next_group)
            group_regions.append(leaf.name)
            entity_groups.extend([next_group] * int(size))
            next_group += 1

    entities = Table({
        "entity_id": np.arange(len(entity_groups), dtype=np.int64),
        "group_id": np.asarray(entity_groups, dtype=np.int64),
    }) if entity_groups else Table({
        "entity_id": np.zeros(0, dtype=np.int64),
        "group_id": np.zeros(0, dtype=np.int64),
    })
    groups = Table({
        "group_id": np.asarray(group_ids, dtype=np.int64),
        "region_id": np.asarray(group_regions, dtype=object),
    })
    hierarchy_columns = {
        "region_id": np.asarray(region_ids, dtype=object),
    }
    for level in range(num_levels):
        hierarchy_columns[level_column(level)] = np.asarray(
            level_labels[level], dtype=object
        )
    return Database(
        entities=entities, groups=groups, hierarchy=Table(hierarchy_columns)
    )
