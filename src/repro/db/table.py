"""A minimal columnar table.

``Table`` stores named, equal-length NumPy columns and supports the handful
of relational operations the reproduction needs: projection, selection by
boolean predicate, row slicing and pretty printing.  It deliberately avoids
pandas (not a dependency of this project) while keeping the group-by
pipelines vectorized.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Tuple

import numpy as np

from repro.exceptions import QueryError


class Table:
    """Named, equal-length columns with vectorized relational operations.

    Examples
    --------
    >>> t = Table({"g": np.array([1, 1, 2]), "loc": np.array([0, 0, 1])})
    >>> t.num_rows
    3
    >>> t.select(t["g"] == 1).num_rows
    2
    """

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        if not columns:
            raise QueryError("a table needs at least one column")
        normalized: Dict[str, np.ndarray] = {}
        length = None
        for name, column in columns.items():
            arr = np.asarray(column)
            if arr.ndim != 1:
                raise QueryError(f"column {name!r} must be 1-d, got {arr.ndim}-d")
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise QueryError(
                    f"column {name!r} has {arr.size} rows, expected {length}"
                )
            normalized[name] = arr
        self._columns = normalized
        self._length = int(length if length is not None else 0)

    # -- basic accessors ---------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise QueryError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    # -- relational operations ---------------------------------------------
    def project(self, names: Iterable[str]) -> "Table":
        """Return a table with only the given columns (SELECT names)."""
        names = list(names)
        return Table({name: self[name] for name in names})

    def select(self, mask: np.ndarray) -> "Table":
        """Return rows where ``mask`` is true (WHERE predicate)."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.size != self._length:
            raise QueryError(
                f"selection mask must be bool of length {self._length}"
            )
        return Table({name: col[mask] for name, col in self._columns.items()})

    def where(self, column: str, predicate: Callable[[np.ndarray], np.ndarray]) -> "Table":
        """Shorthand for ``select(predicate(self[column]))``."""
        return self.select(np.asarray(predicate(self[column])))

    def take(self, indices: np.ndarray) -> "Table":
        """Return the rows at ``indices`` in order."""
        indices = np.asarray(indices)
        return Table({name: col[indices] for name, col in self._columns.items()})

    def with_column(self, name: str, values: np.ndarray) -> "Table":
        """Return a copy with column ``name`` added or replaced."""
        values = np.asarray(values)
        if values.size != self._length:
            raise QueryError(
                f"new column {name!r} has {values.size} rows, expected {self._length}"
            )
        columns = dict(self._columns)
        columns[name] = values
        return Table(columns)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a copy with columns renamed per ``mapping``."""
        for old in mapping:
            if old not in self._columns:
                raise QueryError(f"cannot rename missing column {old!r}")
        return Table(
            {mapping.get(name, name): col for name, col in self._columns.items()}
        )

    def sort_by(self, column: str) -> "Table":
        """Return a copy sorted ascending by ``column`` (stable)."""
        order = np.argsort(self[column], kind="stable")
        return self.take(order)

    def rows(self) -> Iterator[Tuple]:
        """Iterate rows as tuples in column order (small tables only)."""
        columns = list(self._columns.values())
        for i in range(self._length):
            yield tuple(col[i] for col in columns)

    # -- display -------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Table({self.column_names}, rows={self._length})"

    def head(self, n: int = 5) -> str:
        """A small fixed-width preview of the first ``n`` rows."""
        names = self.column_names
        lines = ["  ".join(f"{name:>12}" for name in names)]
        for row in list(self.rows())[:n]:
            lines.append("  ".join(f"{str(value):>12}" for value in row))
        return "\n".join(lines)
