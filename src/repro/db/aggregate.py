"""Additional relational operators: generic aggregation, multi-key sort,
CSV import/export and the paper's unattributed-histogram pipeline.

Section 1 of the paper defines unattributed histograms with the query::

    Hg = SELECT COUNT(*) AS size FROM R GROUP BY groupid ORDER BY size

:func:`unattributed_pipeline` executes exactly that against an Entities
table (plus the Groups table so empty groups count as size 0).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.db.query import group_by_count
from repro.db.table import Table
from repro.exceptions import QueryError

PathLike = Union[str, Path]

#: Supported aggregate names for :func:`group_by_agg`.
AGGREGATES = ("sum", "min", "max", "mean", "count")


def group_by_agg(
    table: Table, key: str, value: str, agg: str, out: str = None
) -> Table:
    """``SELECT key, AGG(value) FROM table GROUP BY key`` for any AGG.

    Examples
    --------
    >>> t = Table({"k": np.array([1, 1, 2]), "v": np.array([3, 5, 7])})
    >>> list(group_by_agg(t, "k", "v", "max")["max_v"])
    [5, 7]
    """
    if agg not in AGGREGATES:
        raise QueryError(f"unknown aggregate {agg!r}; expected one of {AGGREGATES}")
    out = out or f"{agg}_{value}"
    keys = table[key]
    values = table[value]
    if keys.size == 0:
        return Table({key: keys, out: np.zeros(0, dtype=np.float64)})

    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [keys.size]])

    unique_keys = sorted_keys[starts]
    if agg == "count":
        result = (ends - starts).astype(np.int64)
    elif agg == "sum":
        sums = np.concatenate([[0], np.cumsum(sorted_values)])
        result = sums[ends] - sums[starts]
    elif agg == "mean":
        sums = np.concatenate([[0.0], np.cumsum(sorted_values, dtype=np.float64)])
        result = (sums[ends] - sums[starts]) / (ends - starts)
    else:  # min / max via per-block reduction
        reducer = np.minimum if agg == "min" else np.maximum
        result = np.array([
            sorted_values[start:end].min() if agg == "min"
            else sorted_values[start:end].max()
            for start, end in zip(starts, ends)
        ])
        del reducer
    return Table({key: unique_keys, out: result})


def order_by(table: Table, keys: Sequence[str], descending: bool = False) -> Table:
    """Stable multi-key sort (last key least significant... SQL order).

    ``ORDER BY keys[0], keys[1], ...`` — rows compare by ``keys[0]`` first.
    """
    if not keys:
        raise QueryError("order_by needs at least one key")
    order = np.arange(table.num_rows)
    # Sort by the least-significant key first; stable sorts compose.
    for key in reversed(list(keys)):
        column = table[key][order]
        order = order[np.argsort(column, kind="stable")]
    if descending:
        order = order[::-1]
    return table.take(order)


def unattributed_pipeline(entities: Table, groups: Table) -> np.ndarray:
    """The Hg query of Section 1, including size-0 groups.

    ``SELECT COUNT(*) AS size FROM Entities GROUP BY group_id
    ORDER BY size`` — with groups absent from Entities reported as size 0
    (they exist in the public Groups table).

    Returns the sorted array of group sizes (the ``Hg`` representation).
    """
    sized = group_by_count(entities, "group_id", "size")
    group_ids = groups["group_id"]
    if np.unique(group_ids).size != group_ids.size:
        raise QueryError("group_id must be unique in the Groups table")

    sizes = np.zeros(group_ids.size, dtype=np.int64)
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    positions = np.searchsorted(sorted_ids, sized["group_id"])
    clipped = np.clip(positions, 0, sorted_ids.size - 1)
    if sized.num_rows and np.any(sorted_ids[clipped] != sized["group_id"]):
        raise QueryError("Entities reference group_ids missing from Groups")
    sizes[order[clipped]] = sized["size"]
    return np.sort(sizes)


def table_to_csv(table: Table, path: PathLike) -> None:
    """Write a table as CSV (header = column names)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.rows():
            writer.writerow(row)


def table_from_csv(path: PathLike, numeric: Sequence[str] = ()) -> Table:
    """Read a CSV into a table; columns named in ``numeric`` become int64
    (or float64 when values carry decimal points), the rest stay strings."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise QueryError(f"{path} is empty") from None
        rows = list(reader)

    columns: Dict[str, np.ndarray] = {}
    numeric_set = set(numeric)
    for index, name in enumerate(header):
        raw: List[str] = [row[index] for row in rows]
        if name in numeric_set:
            if any("." in value for value in raw):
                columns[name] = np.array([float(v) for v in raw])
            else:
                columns[name] = np.array([int(v) for v in raw], dtype=np.int64)
        else:
            columns[name] = np.array(raw, dtype=object)
    return Table(columns)
