"""In-memory relational substrate.

The paper defines its input as a three-table relational database
(Section 3)::

    Entities(entity_id, group_id)          -- private
    Groups(group_id, region_id)            -- public group counts
    Hierarchy(region_id, level0..levelL)   -- public region tree

and derives count-of-counts histograms with the two-step SQL pipeline of the
introduction::

    A = SELECT group_id, COUNT(*) AS size FROM Entities GROUP BY group_id
    H = SELECT size, COUNT(*) FROM A GROUP BY size

This subpackage implements a small columnar engine (NumPy-backed tables with
filter / project / join / group-by aggregation) plus the concrete schemas and
queries above, so the dataset generators and tests can build histograms the
same way the paper defines them rather than through ad-hoc shortcuts.
"""

from repro.db.aggregate import (
    group_by_agg,
    order_by,
    table_from_csv,
    table_to_csv,
    unattributed_pipeline,
)
from repro.db.query import group_by_count, group_by_sum, inner_join
from repro.db.schema import CountOfCountsQuery, Database
from repro.db.table import Table

__all__ = [
    "CountOfCountsQuery",
    "Database",
    "Table",
    "group_by_agg",
    "group_by_count",
    "group_by_sum",
    "inner_join",
    "order_by",
    "table_from_csv",
    "table_to_csv",
    "unattributed_pipeline",
]
