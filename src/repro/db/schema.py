"""The paper's three-table schema and its count-of-counts query pipeline.

``Database`` bundles the ``Entities``, ``Groups`` and ``Hierarchy`` tables of
Section 3 and knows which of them are public.  ``CountOfCountsQuery``
materializes group sizes and count-of-counts histograms with the two
GROUP BYs of the introduction, including the subtlety that groups with no
entities still exist in the public ``Groups`` table (they have size 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.db.query import group_by_count
from repro.db.table import Table
from repro.exceptions import QueryError


def level_column(level: int) -> str:
    """Column name used for hierarchy level ``level`` (``level0`` is root)."""
    return f"level{level}"


@dataclass
class Database:
    """The Entities / Groups / Hierarchy database of Section 3.

    Attributes
    ----------
    entities:
        Private table with columns ``entity_id``, ``group_id``.
    groups:
        Public table with columns ``group_id``, ``region_id``.
    hierarchy:
        Public table with columns ``region_id``, ``level0`` .. ``levelL``.
        ``level0`` holds a single root label; ``levelL`` equals ``region_id``
        (regions are the hierarchy's leaves).
    """

    entities: Table
    groups: Table
    hierarchy: Table

    def __post_init__(self) -> None:
        for column in ("entity_id", "group_id"):
            if column not in self.entities:
                raise QueryError(f"Entities table is missing column {column!r}")
        for column in ("group_id", "region_id"):
            if column not in self.groups:
                raise QueryError(f"Groups table is missing column {column!r}")
        if "region_id" not in self.hierarchy:
            raise QueryError("Hierarchy table is missing column 'region_id'")
        if not self.level_columns():
            raise QueryError("Hierarchy table has no level columns")

    def level_columns(self) -> List[str]:
        """Names of the ``level*`` columns present, in level order."""
        names = []
        level = 0
        while level_column(level) in self.hierarchy:
            names.append(level_column(level))
            level += 1
        return names

    @property
    def num_levels(self) -> int:
        """Number of hierarchy levels, including the root level 0."""
        return len(self.level_columns())


class CountOfCountsQuery:
    """Materializes group sizes and count-of-counts histograms.

    The constructor runs the first aggregation of the paper's pipeline
    (``SELECT group_id, COUNT(*) FROM Entities GROUP BY group_id``) once,
    left-joined against the public ``Groups`` table so that groups without
    entities appear with size 0.  Subsequent histogram queries for any
    hierarchy node are pure NumPy filters over that materialization.
    """

    def __init__(self, database: Database) -> None:
        self._database = database
        sized = group_by_count(database.entities, "group_id", "size")

        group_ids = database.groups["group_id"]
        region_ids = database.groups["region_id"]
        sizes = np.zeros(group_ids.size, dtype=np.int64)

        # Align the size table (keyed by group_id) with the Groups table.
        order = np.argsort(group_ids, kind="stable")
        sorted_ids = group_ids[order]
        positions = np.searchsorted(sorted_ids, sized["group_id"])
        if positions.size and (
            np.any(positions >= sorted_ids.size)
            or np.any(sorted_ids[np.clip(positions, 0, sorted_ids.size - 1)]
                      != sized["group_id"])
        ):
            raise QueryError("Entities reference group_ids missing from Groups")
        sizes[order[positions]] = sized["size"]

        self._group_sizes = sizes
        self._group_regions = region_ids
        # region_id -> ancestor label per level, for node filtering.
        self._region_levels: Dict[str, np.ndarray] = {}
        hierarchy = database.hierarchy
        region_order = np.argsort(hierarchy["region_id"], kind="stable")
        sorted_regions = hierarchy["region_id"][region_order]
        region_positions = np.searchsorted(sorted_regions, region_ids)
        clipped = np.clip(region_positions, 0, sorted_regions.size - 1)
        if np.any(sorted_regions[clipped] != region_ids):
            raise QueryError("Groups reference region_ids missing from Hierarchy")
        region_positions = clipped
        for name in database.level_columns():
            ancestors = hierarchy[name][region_order]
            self._region_levels[name] = ancestors[region_positions]

    @property
    def group_sizes(self) -> np.ndarray:
        """Size of every group, aligned with the Groups table rows."""
        return self._group_sizes

    def node_group_sizes(self, level: int, label: object) -> np.ndarray:
        """Sizes of the groups whose level-``level`` ancestor is ``label``."""
        column = level_column(level)
        if column not in self._region_levels:
            raise QueryError(f"hierarchy has no level {level}")
        mask = self._region_levels[column] == label
        return self._group_sizes[mask]

    def node_labels(self, level: int) -> np.ndarray:
        """Distinct node labels at ``level``, sorted."""
        column = level_column(level)
        if column not in self._region_levels:
            raise QueryError(f"hierarchy has no level {level}")
        return np.unique(self._database.hierarchy[column])

    def histogram(
        self, level: int, label: object, length: Optional[int] = None
    ) -> np.ndarray:
        """Count-of-counts histogram ``H`` for one hierarchy node.

        ``H[i]`` counts the groups of size i in the node; the array length is
        ``max size + 1`` unless ``length`` forces a longer (zero-padded)
        array for alignment across nodes.
        """
        sizes = self.node_group_sizes(level, label)
        max_size = int(sizes.max()) if sizes.size else 0
        n = max_size + 1 if length is None else int(length)
        if n < max_size + 1:
            raise QueryError(
                f"length {n} too short for max group size {max_size}"
            )
        return np.bincount(sizes, minlength=n).astype(np.int64)
