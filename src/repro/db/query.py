"""Vectorized group-by and join operators over :class:`~repro.db.table.Table`.

These implement exactly the relational algebra the paper's pipelines need:
``GROUP BY key COUNT(*)``, ``GROUP BY key SUM(col)`` and an inner equi-join.
All operators are NumPy-sort based, so they handle millions of rows without
Python-level loops.
"""

from __future__ import annotations

import numpy as np

from repro.db.table import Table
from repro.exceptions import QueryError


def group_by_count(table: Table, key: str, count_name: str = "count") -> Table:
    """``SELECT key, COUNT(*) AS count_name FROM table GROUP BY key``.

    The result is sorted ascending by ``key``.

    Examples
    --------
    >>> t = Table({"g": np.array([2, 1, 2, 2])})
    >>> result = group_by_count(t, "g", "size")
    >>> list(result["g"]), list(result["size"])
    ([1, 2], [1, 3])
    """
    keys = table[key]
    if keys.size == 0:
        return Table({key: keys, count_name: np.zeros(0, dtype=np.int64)})
    unique_keys, counts = np.unique(keys, return_counts=True)
    return Table({key: unique_keys, count_name: counts.astype(np.int64)})


def group_by_sum(
    table: Table, key: str, value: str, sum_name: str = "sum"
) -> Table:
    """``SELECT key, SUM(value) AS sum_name FROM table GROUP BY key``."""
    keys = table[key]
    values = table[value]
    if keys.size == 0:
        return Table({key: keys, sum_name: np.zeros(0, dtype=values.dtype)})
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(unique_keys.size, dtype=np.float64)
    np.add.at(sums, inverse, values.astype(np.float64))
    if np.issubdtype(values.dtype, np.integer):
        sums = sums.astype(np.int64)
    return Table({key: unique_keys, sum_name: sums})


def inner_join(left: Table, right: Table, on: str) -> Table:
    """Inner equi-join on column ``on``.

    Right-table join keys must be unique (the reproduction only joins
    against key tables such as ``Groups`` and ``Hierarchy``, where the join
    column is a primary key); duplicate right keys raise :class:`QueryError`
    rather than silently multiplying rows.
    """
    left_keys = left[on]
    right_keys = right[on]
    if np.unique(right_keys).size != right_keys.size:
        raise QueryError(f"join key {on!r} is not unique in the right table")

    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    positions = np.searchsorted(sorted_right, left_keys)
    positions = np.clip(positions, 0, sorted_right.size - 1)
    matched = sorted_right[positions] == left_keys

    left_matched = left.select(matched)
    right_rows = order[positions[matched]]

    columns = {name: left_matched[name] for name in left_matched.column_names}
    for name in right.column_names:
        if name == on:
            continue
        if name in columns:
            raise QueryError(f"duplicate column {name!r} in join")
        columns[name] = right[name][right_rows]
    return Table(columns)
