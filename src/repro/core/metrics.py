"""Error metrics for count-of-counts histograms.

The paper argues (Section 3.1) that L1/L2 distances between count-of-counts
arrays are the wrong yardstick: moving every group's size from 1 to 2 and
from 1 to 10 score identically under L1/L2, yet the former is clearly a
better estimate.  The right measure is the Earth-mover's distance, which for
this problem equals the number of people that must be added to or removed
from groups — and is computable in linear time as the L1 distance between
cumulative histograms (Lemma 1, via Li, Li & Venkatasubramanian's
t-closeness result).

All metrics accept plain arrays or :class:`~repro.core.histogram.CountOfCounts`
objects, padding the shorter operand with zero counts.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.histogram import CountOfCounts, pad_histogram, validate_histogram
from repro.exceptions import HistogramError

HistogramLike = Union[CountOfCounts, np.ndarray, list, tuple]


def _aligned_pair(a: HistogramLike, b: HistogramLike, require_equal_groups=False):
    ha = a.histogram if isinstance(a, CountOfCounts) else validate_histogram(a)
    hb = b.histogram if isinstance(b, CountOfCounts) else validate_histogram(b)
    if require_equal_groups and ha.sum() != hb.sum():
        raise HistogramError(
            f"earthmover distance requires equal group counts "
            f"({int(ha.sum())} vs {int(hb.sum())}); Lemma 1 only holds when "
            "the number of groups is fixed"
        )
    n = max(ha.size, hb.size)
    return pad_histogram(ha, n), pad_histogram(hb, n)


def earthmover_distance(a: HistogramLike, b: HistogramLike) -> int:
    """EMD between two count-of-counts histograms (Lemma 1).

    Computed as ``|| a_c - b_c ||_1`` on cumulative histograms.  When both
    histograms contain the same number of groups this equals the minimum
    number of entity additions/removals transforming one into the other, and
    also the L1 distance between the unattributed (Hg) views.

    Examples
    --------
    >>> earthmover_distance([0, 100], [0, 0, 100])   # everyone grows by 1
    100
    >>> earthmover_distance([0, 100], [0, 0, 0, 0, 0, 100])
    500
    """
    ha, hb = _aligned_pair(a, b, require_equal_groups=True)
    return int(np.abs(np.cumsum(ha) - np.cumsum(hb)).sum())


def l1_distance(a: HistogramLike, b: HistogramLike) -> int:
    """Manhattan distance ``||a - b||_1`` (shown in §3.1 to be misleading)."""
    ha, hb = _aligned_pair(a, b)
    return int(np.abs(ha - hb).sum())


def l2_distance(a: HistogramLike, b: HistogramLike) -> float:
    """Sum-squared error ``||a - b||_2^2`` (also misleading, kept for
    comparison experiments)."""
    ha, hb = _aligned_pair(a, b)
    diff = (ha - hb).astype(np.float64)
    return float((diff * diff).sum())


def emd_profile(a: HistogramLike, b: HistogramLike) -> np.ndarray:
    """Per-size-index contributions ``|a_c[i] - b_c[i]|`` to the EMD.

    This is the quantity plotted in Figure 1 of the paper: where along the
    group-size axis an estimate's error lives (Hg-method error concentrates
    at small sizes, Hc-method error spreads out).
    """
    ha, hb = _aligned_pair(a, b, require_equal_groups=True)
    return np.abs(np.cumsum(ha) - np.cumsum(hb)).astype(np.int64)
