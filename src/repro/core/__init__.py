"""The paper's primary contribution.

- :mod:`repro.core.histogram` — the three histogram representations
  (count-of-counts ``H``, cumulative ``Hc``, unattributed ``Hg``) and
  conversions between them.
- :mod:`repro.core.metrics` — Earth-mover's distance and companions.
- :mod:`repro.core.estimators` — the single-node estimators of Section 4
  (naive, Hg, Hc).
- :mod:`repro.core.consistency` — the hierarchical machinery of Section 5
  (variance estimation, optimal matching, merging, the top-down algorithm)
  plus the bottom-up and mean-consistency baselines of the evaluation.
"""

from repro.core.histogram import (
    CountOfCounts,
    cumulative_to_histogram,
    histogram_to_cumulative,
    histogram_to_unattributed,
    unattributed_to_histogram,
    validate_histogram,
)
from repro.core.metrics import earthmover_distance, l1_distance, l2_distance

__all__ = [
    "CountOfCounts",
    "cumulative_to_histogram",
    "earthmover_distance",
    "histogram_to_cumulative",
    "histogram_to_unattributed",
    "l1_distance",
    "l2_distance",
    "unattributed_to_histogram",
    "validate_histogram",
]
