"""Count-of-counts histograms with demographic attributes (Section 7).

The paper's conclusion points at the actual Census tables: "the actual
tables include additional demographic characteristics that are attached to
the household sizes at each level of geography", flagging the
higher-dimensional version as future work.  This module implements the
natural first step: a *categorical attribute on groups* (e.g., householder
race, or tenure own/rent), releasing one count-of-counts hierarchy per
category plus the consistent total.

Privacy structure.  Each group belongs to exactly one category, so the
categories partition the entity table: estimating every category's
hierarchy is *parallel* composition — the whole attributed release costs
the same ε as a single unattributed release.  Consistency structure: if
each per-category release satisfies the paper's four desiderata, then the
category-wise sums automatically satisfy them for the totals, because all
the constraints are linear and the public total group count is the sum of
the public per-category counts.  So the released table is consistent in
*both* directions: across the geography hierarchy and across categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.consistency.topdown import ConsistentEstimates, TopDown
from repro.core.histogram import CountOfCounts
from repro.exceptions import EstimationError, HierarchyError
from repro.hierarchy.tree import Hierarchy


@dataclass
class AttributedEstimates:
    """Per-category consistent releases plus their consistent totals.

    Attributes
    ----------
    categories:
        category name → the category's :class:`ConsistentEstimates`.
    totals:
        node name → total histogram (cellwise sum over categories).
    """

    categories: Dict[str, ConsistentEstimates]
    totals: Dict[str, CountOfCounts]

    def histogram(self, node: str, category: Optional[str] = None) -> CountOfCounts:
        """Released histogram for a node, for one category or the total."""
        if category is None:
            return self.totals[node]
        return self.categories[category][node]


def _check_same_structure(hierarchies: Mapping[str, Hierarchy]) -> None:
    names = None
    for category, hierarchy in hierarchies.items():
        current = [node.name for node in hierarchy.nodes()]
        if names is None:
            names = current
        elif current != names:
            raise HierarchyError(
                f"category {category!r} has a different region structure"
            )


class AttributedTopDown:
    """Release per-category hierarchies under one shared ε (Section 7).

    Parameters
    ----------
    algorithm:
        The :class:`TopDown` instance applied to every category.

    Examples
    --------
    >>> from repro.core.estimators import CumulativeEstimator
    >>> from repro.hierarchy import from_leaf_histograms
    >>> owners = from_leaf_histograms("US", {"VA": [0, 5, 2], "MD": [0, 3, 1]})
    >>> renters = from_leaf_histograms("US", {"VA": [0, 2, 2], "MD": [0, 4, 0]})
    >>> algo = AttributedTopDown(TopDown(CumulativeEstimator(max_size=10)))
    >>> released = algo.run({"own": owners, "rent": renters}, epsilon=4.0,
    ...                     rng=np.random.default_rng(0))
    >>> released.totals["US"].num_groups
    19
    """

    def __init__(self, algorithm: TopDown) -> None:
        self.algorithm = algorithm

    def run(
        self,
        hierarchies: Mapping[str, Hierarchy],
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> AttributedEstimates:
        """Release every category's hierarchy; parallel composition means
        the total privacy cost is ``epsilon``."""
        if not hierarchies:
            raise EstimationError("need at least one category")
        _check_same_structure(hierarchies)
        rng = rng if rng is not None else np.random.default_rng()

        categories: Dict[str, ConsistentEstimates] = {}
        for category, hierarchy in hierarchies.items():
            categories[category] = self.algorithm.run(
                hierarchy, epsilon, rng=rng
            )

        totals: Dict[str, CountOfCounts] = {}
        some_hierarchy = next(iter(hierarchies.values()))
        for node in some_hierarchy.nodes():
            total: Optional[CountOfCounts] = None
            for category in categories.values():
                histogram = category[node.name]
                total = histogram if total is None else total + histogram
            assert total is not None
            totals[node.name] = total
        return AttributedEstimates(categories=categories, totals=totals)
