"""Uncertainty reporting for releases.

The variance estimates of Section 5.1 exist to drive the merging step, but
they are also exactly what a data user needs to judge a release: roughly
how far can each released group size be from the truth?  This module turns
a :class:`~repro.core.consistency.topdown.ConsistentEstimates` into
user-facing uncertainty artifacts:

* :func:`group_size_intervals` — per-group normal-approximation confidence
  intervals around the released sizes (clipped at zero);
* :func:`node_error_estimate` — a predicted EMD for each node
  (sum of per-group standard deviations scaled to mean absolute error);
* :func:`release_report` — a text summary of a release's accuracy budget.

All quantities are post-processing of differentially private outputs, so
reporting them costs no additional privacy budget.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.consistency.topdown import ConsistentEstimates
from repro.core.consistency.variance import group_variances
from repro.exceptions import EstimationError

#: Mean absolute deviation of a standard normal — converts a standard
#: deviation into an expected absolute error.
_MAD_FACTOR = float(np.sqrt(2.0 / np.pi))

#: z-scores for common confidence levels.
_Z_SCORES = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    if confidence in _Z_SCORES:
        return _Z_SCORES[confidence]
    raise EstimationError(
        f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
    )


def group_size_intervals(
    release: ConsistentEstimates, node: str, confidence: float = 0.95
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-group (size, lower, upper) bounds for one node's release.

    Uses the node's *initial* estimate variances (the Section 5.1
    approximations); the merged sizes are at least that accurate, so the
    intervals are conservative.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import CumulativeEstimator, TopDown
    >>> from repro.hierarchy import from_leaf_histograms
    >>> tree = from_leaf_histograms("US", {"VA": [0, 9, 3], "MD": [0, 5, 2]})
    >>> result = TopDown(CumulativeEstimator(max_size=8)).run(
    ...     tree, 2.0, rng=np.random.default_rng(0))
    >>> sizes, low, high = group_size_intervals(result, "US")
    >>> bool(np.all(low <= sizes) and np.all(sizes <= high))
    True
    """
    if node not in release.estimates:
        raise EstimationError(f"no node {node!r} in the release")
    estimate = release.estimates[node]
    initial = release.initial_estimates[node]
    sizes = estimate.unattributed.astype(np.float64)

    variances = group_variances(
        sizes.astype(np.int64), initial.epsilon, initial.method
    )
    half_width = _z_for(confidence) * np.sqrt(variances)
    lower = np.maximum(sizes - half_width, 0.0)
    upper = sizes + half_width
    return sizes, lower, upper


def node_error_estimate(release: ConsistentEstimates, node: str) -> float:
    """Predicted EMD for one node from its variance estimates.

    EMD equals the L1 distance between sorted size vectors (Lemma 1), so
    summing each group's expected absolute size error — std × √(2/π) under
    the normal approximation — predicts the node's EMD without access to
    the true data.
    """
    if node not in release.estimates:
        raise EstimationError(f"no node {node!r} in the release")
    estimate = release.estimates[node]
    initial = release.initial_estimates[node]
    sizes = estimate.unattributed
    if sizes.size == 0:
        return 0.0
    variances = group_variances(sizes, initial.epsilon, initial.method)
    return float(_MAD_FACTOR * np.sqrt(variances).sum())


def format_accuracy_report(
    rows, epsilon_spent: float, epsilon_budget: float
) -> str:
    """Render accuracy-report rows into the canonical text layout.

    ``rows`` holds ``(node, groups, predicted_emd, entities)`` tuples.
    Shared by :func:`release_report` (fresh in-memory results) and
    :meth:`repro.api.release.Release.accuracy_report` (stored artifacts),
    which must render byte-identically — one formatter, one layout.
    """
    lines = ["release accuracy report (variance-based predictions)"]
    lines.append(
        f"{'node':<24}{'groups':>10}{'pred. emd':>14}{'rel. to people':>16}"
    )
    for node, groups, predicted, entities in rows:
        entities = max(entities, 1)
        lines.append(
            f"{node:<24}{groups:>10,}{predicted:>14,.1f}"
            f"{predicted / entities:>15.2%}"
        )
    lines.append(
        f"privacy: eps spent {epsilon_spent:.4f} of {epsilon_budget:.4f}"
    )
    return "\n".join(lines)


def release_report(release: ConsistentEstimates) -> str:
    """A text accuracy report for a full release.

    One line per node: group count, predicted EMD and predicted relative
    error against the node's entity total.
    """
    rows = [
        (
            node,
            estimate.num_groups,
            node_error_estimate(release, node),
            estimate.num_entities,
        )
        for node, estimate in sorted(release.estimates.items())
    ]
    return format_accuracy_report(
        rows, release.budget.spent, release.budget.epsilon
    )
