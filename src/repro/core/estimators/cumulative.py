"""The Hc (cumulative histogram) estimator (Section 4.3).

EMD error is exactly the L1 distance between cumulative histograms
(Lemma 1), so this estimator privatizes the cumulative view directly.  The
cumulative histogram has sensitivity 1 (Lemma 4): adding one person to a
group of size i decrements ``Hc[i]`` only.

Pipeline: truncate at the public bound K → cumulative sum → double-geometric
noise with scale 1/ε → isotonic regression with the last entry pinned to the
public group count G (L1 by default; the paper found p=1 more accurate than
p=2, consistent with Lin & Kifer's observations) → round → first differences
back to a count-of-counts histogram.

The paper observes this method is accurate for small group sizes but less so
for large ones (Figure 1, bottom), and recommends it as the default at every
hierarchy level.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.consistency.variance import group_variances
from repro.core.estimators.base import Estimator, NodeEstimate
from repro.core.histogram import CountOfCounts
from repro.exceptions import EstimationError
from repro.isotonic.constrained import isotonic_with_endpoint
from repro.mechanisms.geometric import double_geometric

#: Global sensitivity of the cumulative histogram (Lemma 4).
SENSITIVITY = 1.0


class CumulativeEstimator(Estimator):
    """Noise on ``Hc``, repaired by endpoint-constrained isotonic regression.

    Parameters
    ----------
    max_size:
        Public bound K on the maximum group size.  The paper used
        K = 100,000 on data whose largest group was ~10,000 and reports the
        method is insensitive to K; use :func:`estimate_public_bound` when
        no prior bound is known.
    p:
        Isotonic loss exponent, 1 (default, more accurate) or 2 (faster).

    Examples
    --------
    >>> est = CumulativeEstimator(max_size=10)
    >>> result = est.estimate(CountOfCounts([0, 3, 2]), epsilon=2.0,
    ...                       rng=np.random.default_rng(2))
    >>> result.estimate.num_groups
    5
    """

    method = "hc"

    def __init__(self, max_size: int = 10_000, p: int = 1) -> None:
        if max_size < 1:
            raise EstimationError(f"max_size must be >= 1, got {max_size}")
        if p not in (1, 2):
            raise EstimationError(f"p must be 1 or 2, got {p}")
        self.max_size = int(max_size)
        self.p = int(p)

    def estimate(
        self,
        data: CountOfCounts,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> NodeEstimate:
        epsilon = self._check_epsilon(epsilon)
        rng = self._rng(rng)

        total = data.num_groups
        truncated = data.truncated(self.max_size)
        cumulative = truncated.cumulative.astype(np.float64)

        noise = double_geometric(cumulative.size, epsilon, SENSITIVITY, rng=rng)
        noisy = cumulative + noise

        fitted, _ = isotonic_with_endpoint(noisy, total=float(total), p=self.p)
        rounded = np.rint(fitted).astype(np.int64)
        rounded = np.maximum.accumulate(rounded)  # guard against rint ties
        rounded[-1] = total

        estimate = CountOfCounts.from_cumulative(rounded)
        variances = group_variances(estimate.unattributed, epsilon, method="hc")
        return NodeEstimate(
            estimate=estimate, epsilon=epsilon, method=self.method,
            variances=variances,
        )

    def __repr__(self) -> str:
        return f"CumulativeEstimator(max_size={self.max_size}, p={self.p})"
