"""Private data-dependent method selection (Section 6.2, footnote 4/8).

The paper: "Generally, Hc works well for all levels.  Users preferring
fine-grained control can use generic algorithm selection tools (Pythia,
Chaudhuri et al.)" — and its own evaluation shows Hg winning on data that
is *sparse* in the size domain (few distinct sizes separated by gaps,
e.g. the housing tail or the Hawaiian blocks).

:class:`DensitySelector` implements a lightweight selector in that spirit:
it spends a small slice of a node's budget measuring the histogram's
*size-domain density* — distinct sizes per unit of size range — with the
geometric mechanism, then picks Hg for sparse nodes and Hc for dense ones.
Both the measurement and the choice are differentially private (the
measurement by the geometric mechanism; the choice by post-processing),
and the remaining budget goes to the chosen estimator.

This is deliberately simple — the paper's point is that selection is
orthogonal plumbing — but it is a real, tested implementation rather than
a placeholder.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.estimators.base import Estimator, NodeEstimate
from repro.core.estimators.cumulative import CumulativeEstimator
from repro.core.estimators.unattributed import UnattributedEstimator
from repro.core.histogram import CountOfCounts
from repro.exceptions import EstimationError
from repro.mechanisms.geometric import GeometricMechanism

#: Sensitivity of the distinct-size count: adding/removing one entity moves
#: one group between two adjacent sizes, changing the set of occupied sizes
#: by at most 2.
DISTINCT_SENSITIVITY = 2.0

#: Sensitivity of the maximum occupied size: one entity changes it by <= 1.
MAX_SIZE_SENSITIVITY = 1.0


class DensitySelector(Estimator):
    """Choose between Hc and Hg per node from a private density probe.

    Parameters
    ----------
    max_size:
        Public bound K handed to the Hc estimator.
    selection_fraction:
        Share of the node's budget spent on the density probe.
    density_threshold:
        Occupied fraction of the size range above which the node counts as
        dense (Hc).  The default 0.05 routes only severely gapped size
        supports (e.g. the housing heavy tail, where a few facility sizes
        dot a 10^4-wide range) to Hg, which is the regime where the paper
        observed Hg-based methods winning.

    Examples
    --------
    >>> est = DensitySelector(max_size=100)
    >>> dense = CountOfCounts(np.ones(60, dtype=np.int64))
    >>> result = est.estimate(dense, epsilon=5.0,
    ...                       rng=np.random.default_rng(0))
    >>> result.estimate.num_groups == dense.num_groups
    True
    """

    method = "auto"

    def __init__(
        self,
        max_size: int = 10_000,
        selection_fraction: float = 0.05,
        density_threshold: float = 0.05,
    ) -> None:
        if not 0.0 < selection_fraction < 1.0:
            raise EstimationError(
                f"selection_fraction must be in (0, 1), got {selection_fraction}"
            )
        if not 0.0 < density_threshold < 1.0:
            raise EstimationError(
                f"density_threshold must be in (0, 1), got {density_threshold}"
            )
        self.max_size = int(max_size)
        self.selection_fraction = float(selection_fraction)
        self.density_threshold = float(density_threshold)
        self._hc = CumulativeEstimator(max_size=max_size)
        self._hg = UnattributedEstimator()

    def probe_density(
        self,
        data: CountOfCounts,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Private estimate of #distinct sizes / (max occupied size + 1).

        Spends ``epsilon`` (split evenly between the two counts).
        """
        epsilon = self._check_epsilon(epsilon)
        rng = self._rng(rng)
        half = epsilon / 2.0
        distinct = GeometricMechanism(
            half, DISTINCT_SENSITIVITY, rng=rng
        ).randomise(data.num_distinct_sizes)
        max_size = GeometricMechanism(
            half, MAX_SIZE_SENSITIVITY, rng=rng
        ).randomise(data.max_size)
        distinct = max(int(distinct), 1)
        max_size = max(int(max_size), 1)
        return min(distinct / (max_size + 1.0), 1.0)

    def estimate(
        self,
        data: CountOfCounts,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> NodeEstimate:
        epsilon = self._check_epsilon(epsilon)
        rng = self._rng(rng)

        probe_budget = epsilon * self.selection_fraction
        remaining = epsilon - probe_budget
        density = self.probe_density(data, probe_budget, rng=rng)
        chosen = self._hc if density >= self.density_threshold else self._hg

        result = chosen.estimate(data, remaining, rng=rng)
        # Report the full epsilon actually consumed, but keep the inner
        # method tag so variance estimation stays correct downstream.
        return NodeEstimate(
            estimate=result.estimate,
            epsilon=epsilon,
            method=result.method,
            variances=result.variances,
        )

    def __repr__(self) -> str:
        return (
            f"DensitySelector(max_size={self.max_size}, "
            f"threshold={self.density_threshold})"
        )
