"""Single-node count-of-counts estimators (Section 4 of the paper).

Three strategies produce a differentially private estimate ``Ĥ`` of one
node's count-of-counts histogram:

- :class:`NaiveEstimator` — noise directly on ``H`` (Section 4.1); shown in
  the evaluation to be orders of magnitude worse, kept as a baseline.
- :class:`UnattributedEstimator` — the ``Hg`` method (Section 4.2): noise on
  the sorted group-size vector followed by L2 isotonic regression.
- :class:`CumulativeEstimator` — the ``Hc`` method (Section 4.3): noise on
  the cumulative histogram followed by endpoint-constrained isotonic
  regression (L1 by default, which the paper found more accurate).

:func:`estimate_public_bound` implements footnote 6's cheap estimate of the
public maximum group size K.  :class:`PerLevelSpec` assigns an estimator to
every hierarchy level (the paper's ``Hc × Hg × Hc`` notation).
"""

from repro.core.estimators.base import Estimator, NodeEstimate
from repro.core.estimators.bayes import BayesianCumulativeEstimator
from repro.core.estimators.cumulative import CumulativeEstimator
from repro.core.estimators.naive import NaiveEstimator
from repro.core.estimators.public_bound import estimate_public_bound
from repro.core.estimators.selection import PerLevelSpec
from repro.core.estimators.selector import DensitySelector
from repro.core.estimators.unattributed import UnattributedEstimator

__all__ = [
    "BayesianCumulativeEstimator",
    "CumulativeEstimator",
    "DensitySelector",
    "Estimator",
    "NaiveEstimator",
    "NodeEstimate",
    "PerLevelSpec",
    "UnattributedEstimator",
    "estimate_public_bound",
]
