"""Estimator interface shared by the three strategies of Section 4.

Every estimator turns a node's true :class:`CountOfCounts` into a
:class:`NodeEstimate`: a differentially private histogram satisfying the
single-node desiderata (integrality, nonnegativity, group-size preservation)
plus per-group variance estimates in the ``Hg`` view, which the hierarchical
consistency step (Section 5) consumes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.histogram import CountOfCounts
from repro.exceptions import EstimationError


@dataclass(frozen=True)
class NodeEstimate:
    """A private estimate of one node's histogram plus merge metadata.

    Attributes
    ----------
    estimate:
        The private count-of-counts histogram Ĥ (integral, nonnegative,
        summing to the node's public group count G).
    epsilon:
        Privacy budget spent producing the estimate.
    method:
        Short tag identifying the strategy (``"hg"``, ``"hc"``, ``"naive"``);
        determines the variance formula of Section 5.1.
    variances:
        Per-group variance estimates aligned with ``estimate.unattributed``
        (the i-th entry is the estimated variance of the size of the i-th
        smallest group).
    """

    estimate: CountOfCounts
    epsilon: float
    method: str
    variances: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.variances.shape != (self.estimate.num_groups,):
            raise EstimationError(
                f"variances shape {self.variances.shape} does not match the "
                f"number of groups {self.estimate.num_groups}"
            )
        if np.any(self.variances <= 0):
            raise EstimationError("group variances must be positive")

    @property
    def unattributed(self) -> np.ndarray:
        """The Hg view of the estimate (sorted group sizes)."""
        return self.estimate.unattributed


class Estimator(abc.ABC):
    """A differentially private single-node count-of-counts estimator."""

    #: Short method tag (set by subclasses): "hg", "hc" or "naive".
    method: str = "base"

    @abc.abstractmethod
    def estimate(
        self,
        data: CountOfCounts,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> NodeEstimate:
        """Return an ε-differentially private estimate of ``data``."""

    @staticmethod
    def _check_epsilon(epsilon: float) -> float:
        if not np.isfinite(epsilon) or epsilon <= 0:
            raise EstimationError(f"epsilon must be positive, got {epsilon!r}")
        return float(epsilon)

    @staticmethod
    def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
        return rng if rng is not None else np.random.default_rng()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
