"""The naive estimator (Section 4.1).

Adds double-geometric noise with sensitivity 2 (Lemma 3) to every cell of
the truncated count-of-counts histogram, then restores validity by
projecting onto ``{x >= 0, sum x = G}`` (the quadratic program of the paper,
solved in closed form) and largest-remainder rounding.

The paper rules this method out empirically (Section 6.2.1): noise lands on
the many empty cells, and EMD error accumulates over cumulative sums, giving
error quadratic in the histogram length.  It is included as the baseline for
experiment E2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.consistency.variance import group_variances
from repro.core.estimators.base import Estimator, NodeEstimate
from repro.core.histogram import CountOfCounts
from repro.exceptions import EstimationError
from repro.isotonic.rounding import largest_remainder_round
from repro.isotonic.simplex import project_to_simplex
from repro.mechanisms.geometric import GeometricMechanism

#: Global sensitivity of the truncated count-of-counts histogram (Lemma 3):
#: one entity added/removed changes two adjacent cells by one each.
SENSITIVITY = 2.0


class NaiveEstimator(Estimator):
    """Noise directly on ``H``, then simplex projection and rounding.

    Parameters
    ----------
    max_size:
        The public bound K on group sizes.  The true histogram is truncated
        at K before noise addition (Section 4.1), which is what makes the
        histogram length — and hence the noise dimension — public.

    Examples
    --------
    >>> est = NaiveEstimator(max_size=8)
    >>> result = est.estimate(CountOfCounts([0, 3, 2]), epsilon=1.0,
    ...                       rng=np.random.default_rng(0))
    >>> result.estimate.num_groups
    5
    """

    method = "naive"

    def __init__(self, max_size: int = 10_000) -> None:
        if max_size < 1:
            raise EstimationError(f"max_size must be >= 1, got {max_size}")
        self.max_size = int(max_size)

    def estimate(
        self,
        data: CountOfCounts,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> NodeEstimate:
        epsilon = self._check_epsilon(epsilon)
        rng = self._rng(rng)

        truncated = data.truncated(self.max_size)
        mechanism = GeometricMechanism(epsilon, SENSITIVITY, rng=rng)
        noisy = mechanism.randomise(truncated.histogram)

        projected = project_to_simplex(
            noisy.astype(np.float64), total=float(data.num_groups)
        )
        rounded = largest_remainder_round(projected, total=data.num_groups)
        estimate = CountOfCounts(rounded)

        variances = group_variances(estimate.unattributed, epsilon, method="naive")
        return NodeEstimate(
            estimate=estimate, epsilon=epsilon, method=self.method,
            variances=variances,
        )

    def __repr__(self) -> str:
        return f"NaiveEstimator(max_size={self.max_size})"
