"""Per-level estimator selection.

The paper's evaluation sweeps combinations like ``Hc × Hg × Hc`` — a
different single-node strategy at each hierarchy level (Section 6.2:
"we can use the Hg method at national level but Hc at state level...").
:class:`PerLevelSpec` captures such a combination and hands the right
estimator to the top-down algorithm for each level.  Fine-grained,
data-driven selection (Pythia etc.) is out of scope for the paper and for
this reproduction; the paper recommends Hc everywhere as the default.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.core.estimators.base import Estimator
from repro.core.estimators.cumulative import CumulativeEstimator
from repro.core.estimators.naive import NaiveEstimator
from repro.core.estimators.unattributed import UnattributedEstimator
from repro.exceptions import EstimationError


class PerLevelSpec:
    """Assigns a single-node estimator to every hierarchy level.

    Construct either from estimator instances or from the paper's compact
    string notation (case-insensitive, ``x``/``×``/``*`` all accepted as the
    separator):

    Examples
    --------
    >>> spec = PerLevelSpec.from_string("hc x hg x hc", max_size=100)
    >>> spec.num_levels
    3
    >>> spec.for_level(1).method
    'hg'
    >>> str(spec)
    'Hc×Hg×Hc'
    """

    def __init__(self, estimators: Sequence[Estimator]) -> None:
        if not estimators:
            raise EstimationError("PerLevelSpec needs at least one estimator")
        self._estimators: List[Estimator] = list(estimators)

    @classmethod
    def from_string(
        cls, spec: str, max_size: int = 10_000, p: int = 1
    ) -> "PerLevelSpec":
        """Parse ``"Hc×Hg×Hc"``-style notation into a spec.

        ``max_size`` and ``p`` configure any Hc/naive estimators created.
        """
        names = [
            part.strip().lower()
            for part in spec.replace("×", "x").replace("*", "x").split("x")
        ]
        estimators: List[Estimator] = []
        for name in names:
            if name == "hc":
                estimators.append(CumulativeEstimator(max_size=max_size, p=p))
            elif name == "hg":
                estimators.append(UnattributedEstimator())
            elif name == "naive":
                estimators.append(NaiveEstimator(max_size=max_size))
            else:
                raise EstimationError(
                    f"unknown estimator {name!r} in spec {spec!r}; "
                    "expected 'hc', 'hg' or 'naive'"
                )
        return cls(estimators)

    @classmethod
    def uniform(cls, estimator: Estimator, levels: int) -> "PerLevelSpec":
        """Use the same estimator at every level (e.g. the Hc default)."""
        if levels < 1:
            raise EstimationError(f"levels must be >= 1, got {levels}")
        return cls([estimator] * levels)

    @property
    def num_levels(self) -> int:
        return len(self._estimators)

    def for_level(self, level: int) -> Estimator:
        """Estimator to use at hierarchy level ``level`` (0 = root)."""
        if not 0 <= level < len(self._estimators):
            raise EstimationError(
                f"level {level} outside spec of {len(self._estimators)} levels"
            )
        return self._estimators[level]

    def __str__(self) -> str:
        return "×".join(
            est.method.capitalize() if est.method != "naive" else "Naive"
            for est in self._estimators
        )

    def __repr__(self) -> str:
        return f"PerLevelSpec({self._estimators!r})"
