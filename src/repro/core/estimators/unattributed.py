"""The Hg (unattributed histogram) estimator (Section 4.2).

Converts the node's histogram into the sorted group-size vector ``Hg``
(sensitivity 1, per Hay et al.), adds double-geometric noise with scale 1/ε
to every entry, restores the nondecreasing shape by L2 isotonic regression
(PAV — the paper uses p=2 here because ``Hg`` can be extremely long), clips
at zero, rounds to the nearest integer, and converts back to a
count-of-counts histogram.

The number of groups G is preserved exactly: the estimator perturbs the
*sizes* of the G groups, never their count.  The paper observes that this
method estimates large groups well but concentrates its error on the many
small groups (Figure 1, top).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.consistency.variance import group_variances
from repro.core.estimators.base import Estimator, NodeEstimate
from repro.core.histogram import CountOfCounts
from repro.isotonic.pav import isotonic_blocks
from repro.mechanisms.geometric import double_geometric

#: Global sensitivity of the unattributed histogram (Hay et al. 2010).
SENSITIVITY = 1.0


class UnattributedEstimator(Estimator):
    """Noise on the sorted group sizes, repaired by isotonic regression.

    Examples
    --------
    >>> est = UnattributedEstimator()
    >>> result = est.estimate(CountOfCounts([0, 3, 2]), epsilon=2.0,
    ...                       rng=np.random.default_rng(1))
    >>> result.estimate.num_groups
    5
    """

    method = "hg"

    def estimate(
        self,
        data: CountOfCounts,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> NodeEstimate:
        epsilon = self._check_epsilon(epsilon)
        rng = self._rng(rng)

        sizes = data.unattributed.astype(np.float64)
        if sizes.size == 0:
            # A node with no groups has exactly one valid estimate.
            estimate = CountOfCounts([0])
            return NodeEstimate(
                estimate=estimate, epsilon=epsilon, method=self.method,
                variances=np.zeros(0, dtype=np.float64),
            )

        noise = double_geometric(sizes.size, epsilon, SENSITIVITY, rng=rng)
        noisy = sizes + noise

        fitted, _ = isotonic_blocks(noisy)
        fitted = np.clip(fitted, 0.0, None)
        rounded = np.rint(fitted).astype(np.int64)

        estimate = CountOfCounts.from_unattributed(rounded)
        variances = group_variances(estimate.unattributed, epsilon, method="hg")
        return NodeEstimate(
            estimate=estimate, epsilon=epsilon, method=self.method,
            variances=variances,
        )
