"""Bayesian post-processing of the cumulative histogram (Section 4.3).

The paper notes: "A Bayesian post-processing is known to further reduce
error, but we did not use it because it scales quadratically with the size
of the histogram" (citing Lin & Kifer, SIGMOD 2013).  This module
implements that estimator for the sizes where it *is* tractable, so the
claim can be tested rather than taken on faith (see the A4 ablation
benchmark).

Model.  The true cumulative histogram is an integer sequence
``0 <= t[0] <= t[1] <= ... <= t[K] = G`` observed through independent
double-geometric noise (the exact noise the Hc estimator adds).  Under a
uniform prior over all such monotone sequences, the posterior marginals
can be computed exactly by a forward-backward dynamic program over the
value grid {0..G}:

    forward[i][v]  ∝ P(y[i] | t[i]=v) · Σ_{u<=v} forward[i-1][u]
    backward[i][v] ∝ P(y[i] | t[i]=v) · Σ_{u>=v} backward[i+1][u]

with the endpoint pinned (backward[K][v] nonzero only at v = G).  The
posterior marginal of cell i is forward·backward divided by one likelihood
factor; its mean is the Bayes-optimal (L2) estimate.  Complexity is
O(K·G) time and memory after prefix-sum acceleration — the quadratic blow
up the paper mentions, hence :attr:`cell_limit`.

The posterior-mean sequence is monotone (monotone sequences are preserved
by this posterior's means), but rounding can create unit violations, so
the output passes through the same rounding guard as the Hc estimator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.consistency.variance import group_variances
from repro.core.estimators.base import Estimator, NodeEstimate
from repro.core.histogram import CountOfCounts
from repro.exceptions import EstimationError
from repro.mechanisms.geometric import double_geometric

#: Global sensitivity of the cumulative histogram (Lemma 4).
SENSITIVITY = 1.0


def _log_double_geometric_pmf(
    observed: np.ndarray, values: np.ndarray, epsilon: float
) -> np.ndarray:
    """log P(noise = observed[i] - values[j]) as a (cells x values) matrix."""
    alpha = np.exp(-epsilon / SENSITIVITY)
    log_alpha = -epsilon / SENSITIVITY
    log_norm = np.log1p(-alpha) - np.log1p(alpha)
    deltas = np.abs(observed[:, None] - values[None, :])
    return log_norm + deltas * log_alpha


def posterior_mean_cumulative(
    noisy: np.ndarray, total: int, epsilon: float, jump_penalty: float = 1.0
) -> np.ndarray:
    """Exact posterior-mean cumulative histogram.

    Parameters
    ----------
    noisy:
        The noisy cumulative histogram (length K+1, integer-valued —
        the geometric mechanism's output).
    total:
        The public group count G; the last cell is pinned to it.
    epsilon:
        Budget the noise was drawn with (defines the likelihood).
    jump_penalty:
        Prior weight q applied at every cell where the sequence strictly
        increases.  q = 1 is the uniform prior over monotone sequences;
        q < 1 favours sequences with few jump positions — the empirical
        structure of count-of-counts data, whose cumulative histograms are
        staircases with long flat runs.  (Any prior on increment *sizes*
        alone telescopes to a constant once the endpoint is pinned, so jump
        sparsity is the informative one-parameter family here.)

    Returns
    -------
    Real-valued nondecreasing array with last element ``total``.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    if noisy.ndim != 1 or noisy.size == 0:
        raise EstimationError(f"expected nonempty 1-d input, got {noisy.shape}")
    if total < 0:
        raise EstimationError(f"total must be nonnegative, got {total}")
    if not 0.0 < jump_penalty <= 1.0:
        raise EstimationError(
            f"jump_penalty must be in (0, 1], got {jump_penalty}"
        )
    cells = noisy.size
    values = np.arange(total + 1, dtype=np.float64)
    log_q = np.log(jump_penalty)

    log_like = _log_double_geometric_pmf(noisy, values, epsilon)

    # Forward pass:
    #   f[i][v] = like_i(v) * (f[i-1][v] + q * sum_{u<v} f[i-1][u])
    # i.e. staying flat is free, jumping anywhere below costs the penalty.
    forward = np.empty((cells, total + 1), dtype=np.float64)
    forward[0] = log_like[0]
    for i in range(1, cells):
        prev = forward[i - 1]
        strict_prefix = np.full(total + 1, -np.inf)
        if total > 0:
            strict_prefix[1:] = np.logaddexp.accumulate(prev[:-1])
        forward[i] = log_like[i] + np.logaddexp(prev, log_q + strict_prefix)

    # Backward pass with the endpoint pinned at G.
    backward = np.full((cells, total + 1), -np.inf, dtype=np.float64)
    backward[cells - 1][total] = log_like[cells - 1][total]
    for i in range(cells - 2, -1, -1):
        nxt = backward[i + 1]
        strict_suffix = np.full(total + 1, -np.inf)
        if total > 0:
            strict_suffix[:-1] = np.logaddexp.accumulate(nxt[::-1])[::-1][1:]
        backward[i] = log_like[i] + np.logaddexp(nxt, log_q + strict_suffix)

    means = np.empty(cells, dtype=np.float64)
    for i in range(cells):
        log_post = forward[i] + backward[i] - log_like[i]
        log_post -= log_post.max()
        post = np.exp(log_post)
        means[i] = float((post * values).sum() / post.sum())
    means[-1] = float(total)
    # The exact posterior means are monotone; enforce against float error.
    return np.maximum.accumulate(means)


class BayesianCumulativeEstimator(Estimator):
    """The Hc estimator with posterior-mean instead of isotonic repair.

    Parameters
    ----------
    max_size:
        Public bound K on group sizes (histogram length - 1).
    cell_limit:
        Upper bound on ``(K+1) * (G+1)`` before the estimator refuses to
        run — the quadratic cost the paper cites as the reason it skipped
        this method at Census scale.

    Examples
    --------
    >>> est = BayesianCumulativeEstimator(max_size=10)
    >>> result = est.estimate(CountOfCounts([0, 3, 2]), epsilon=1.0,
    ...                       rng=np.random.default_rng(0))
    >>> result.estimate.num_groups
    5
    """

    method = "hc"

    def __init__(
        self,
        max_size: int = 100,
        cell_limit: int = 20_000_000,
        jump_penalty: float = 0.2,
    ) -> None:
        if max_size < 1:
            raise EstimationError(f"max_size must be >= 1, got {max_size}")
        if not 0.0 < jump_penalty <= 1.0:
            raise EstimationError(
                f"jump_penalty must be in (0, 1], got {jump_penalty}"
            )
        self.max_size = int(max_size)
        self.cell_limit = int(cell_limit)
        self.jump_penalty = float(jump_penalty)

    def estimate(
        self,
        data: CountOfCounts,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> NodeEstimate:
        epsilon = self._check_epsilon(epsilon)
        rng = self._rng(rng)

        total = data.num_groups
        work = (self.max_size + 1) * (total + 1)
        if work > self.cell_limit:
            raise EstimationError(
                f"posterior grid of {work:,} cells exceeds cell_limit "
                f"{self.cell_limit:,} — this is the quadratic scaling the "
                "paper cites; use CumulativeEstimator instead"
            )

        truncated = data.truncated(self.max_size)
        cumulative = truncated.cumulative.astype(np.float64)
        noise = double_geometric(cumulative.size, epsilon, SENSITIVITY, rng=rng)
        noisy = cumulative + noise

        fitted = posterior_mean_cumulative(
            noisy, total, epsilon, jump_penalty=self.jump_penalty
        )
        rounded = np.maximum.accumulate(np.rint(fitted).astype(np.int64))
        rounded[-1] = total

        estimate = CountOfCounts.from_cumulative(rounded)
        variances = group_variances(estimate.unattributed, epsilon, method="hc")
        return NodeEstimate(
            estimate=estimate, epsilon=epsilon, method=self.method,
            variances=variances,
        )

    def __repr__(self) -> str:
        return f"BayesianCumulativeEstimator(max_size={self.max_size})"
