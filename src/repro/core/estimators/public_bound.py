"""Estimating the public group-size bound K (Section 4.3, footnote 6).

The Hc and naive methods need a public upper bound K on group size.  When no
prior bound is known, the paper sets aside a sliver of privacy budget
(e.g. ε = 1e-4): release the maximum group size with Laplace(1/ε) noise,
then add five standard deviations so that ``P(K >= true max) > 0.9995``.
The Hc method is insensitive to K being an order of magnitude too large, so
this crude estimate suffices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.histogram import CountOfCounts
from repro.exceptions import EstimationError
from repro.mechanisms.laplace import LaplaceMechanism

#: Sensitivity of the maximum group size: one entity changes it by at most 1.
SENSITIVITY = 1.0

#: Number of noise standard deviations added for the one-sided guarantee.
SAFETY_STDS = 5.0


def estimate_public_bound(
    data: CountOfCounts,
    epsilon: float = 1e-4,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Return a high-probability public upper bound K on the max group size.

    ``K = max_size + Laplace(1/ε) + 5·√2/ε``, floored at 1 so the result is
    always a usable bound.

    Examples
    --------
    >>> bound = estimate_public_bound(CountOfCounts([0, 0, 5]),
    ...                               epsilon=1.0,
    ...                               rng=np.random.default_rng(0))
    >>> bound >= 2
    True
    """
    if epsilon <= 0:
        raise EstimationError(f"epsilon must be positive, got {epsilon}")
    mechanism = LaplaceMechanism(epsilon, SENSITIVITY, rng=rng)
    noisy_max = float(mechanism.randomise(float(data.max_size)))
    bound = noisy_max + SAFETY_STDS * mechanism.standard_deviation
    return max(1, int(np.ceil(bound)))
