"""Count-of-counts histograms and their two companion representations.

Section 3 of the paper works with three interchangeable views of the same
group-size data for a hierarchy node τ:

``H`` (count-of-counts)
    ``H[i]`` is the number of groups of size i.  Additive across sibling
    nodes, which is what makes hierarchical consistency expressible.
``Hc`` (cumulative)
    ``Hc[i] = sum_{j<=i} H[j]``, the number of groups of size <= i.  Always
    nondecreasing and ends at the public group count G.  The Hc estimator
    adds noise in this view because EMD is exactly the L1 distance between
    cumulative histograms (Lemma 1).
``Hg`` (unattributed)
    ``Hg[i]`` is the size of the i-th smallest group; length G,
    nondecreasing.  The matching step of the consistency algorithm operates
    in this view.

This module provides validated conversions between all three, plus
:class:`CountOfCounts`, a small immutable wrapper used by the public API.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import HistogramError

ArrayLike = Union[np.ndarray, list, tuple]


def _as_int_array(values: ArrayLike, name: str) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise HistogramError(f"{name} must be 1-d, got shape {arr.shape}")
    if arr.size == 0:
        raise HistogramError(f"{name} must be nonempty")
    if not np.issubdtype(arr.dtype, np.number):
        raise HistogramError(f"{name} must be numeric, got dtype {arr.dtype}")
    as_int = np.rint(np.asarray(arr, dtype=np.float64)).astype(np.int64)
    if not np.array_equal(as_int, arr):
        raise HistogramError(f"{name} must be integer-valued")
    return as_int


def validate_histogram(histogram: ArrayLike) -> np.ndarray:
    """Check that ``histogram`` is a valid count-of-counts array.

    Valid means: 1-d, nonempty, integer-valued and nonnegative.  Returns the
    validated int64 array.
    """
    arr = _as_int_array(histogram, "count-of-counts histogram")
    if np.any(arr < 0):
        raise HistogramError("count-of-counts histogram has negative entries")
    return arr


def validate_cumulative(cumulative: ArrayLike) -> np.ndarray:
    """Check that ``cumulative`` is a valid cumulative histogram ``Hc``."""
    arr = _as_int_array(cumulative, "cumulative histogram")
    if arr[0] < 0:
        raise HistogramError("cumulative histogram starts below zero")
    if np.any(np.diff(arr) < 0):
        raise HistogramError("cumulative histogram must be nondecreasing")
    return arr


def validate_unattributed(unattributed: ArrayLike) -> np.ndarray:
    """Check that ``unattributed`` is a valid unattributed histogram ``Hg``.

    ``Hg`` may be empty (a node with zero groups); entries must be
    nonnegative integers in nondecreasing order.
    """
    arr = np.asarray(unattributed)
    if arr.ndim != 1:
        raise HistogramError(f"unattributed histogram must be 1-d, got {arr.shape}")
    if arr.size == 0:
        return arr.astype(np.int64)
    arr = _as_int_array(arr, "unattributed histogram")
    if np.any(arr < 0):
        raise HistogramError("unattributed histogram has negative entries")
    if np.any(np.diff(arr) < 0):
        raise HistogramError("unattributed histogram must be nondecreasing")
    return arr


def histogram_to_cumulative(histogram: ArrayLike) -> np.ndarray:
    """``H -> Hc``.

    Examples
    --------
    >>> list(histogram_to_cumulative([0, 2, 1, 2]))
    [0, 2, 3, 5]
    """
    return np.cumsum(validate_histogram(histogram)).astype(np.int64)


def cumulative_to_histogram(cumulative: ArrayLike) -> np.ndarray:
    """``Hc -> H`` (first differences).

    Examples
    --------
    >>> list(cumulative_to_histogram([0, 2, 3, 5]))
    [0, 2, 1, 2]
    """
    arr = validate_cumulative(cumulative)
    return np.diff(arr, prepend=0).astype(np.int64)


def histogram_to_unattributed(histogram: ArrayLike) -> np.ndarray:
    """``H -> Hg``: expand counts into a sorted vector of group sizes.

    Examples
    --------
    >>> list(histogram_to_unattributed([0, 2, 1, 2]))
    [1, 1, 2, 3, 3]
    """
    arr = validate_histogram(histogram)
    return np.repeat(np.arange(arr.size, dtype=np.int64), arr)


def unattributed_to_histogram(
    unattributed: ArrayLike, length: Optional[int] = None
) -> np.ndarray:
    """``Hg -> H``: count how many groups have each size.

    Parameters
    ----------
    unattributed:
        Sorted group sizes.
    length:
        Optional minimum output length (zero padded), for aligning
        histograms across nodes.

    Examples
    --------
    >>> list(unattributed_to_histogram([1, 1, 2, 3, 3]))
    [0, 2, 1, 2]
    """
    arr = validate_unattributed(unattributed)
    minlength = 1 if length is None else int(length)
    if arr.size == 0:
        return np.zeros(minlength, dtype=np.int64)
    return np.bincount(arr, minlength=minlength).astype(np.int64)


def pad_histogram(histogram: np.ndarray, length: int) -> np.ndarray:
    """Zero-pad ``histogram`` on the right to ``length`` cells."""
    histogram = np.asarray(histogram)
    if histogram.size > length:
        raise HistogramError(
            f"histogram of length {histogram.size} cannot be padded to {length}"
        )
    if histogram.size == length:
        return histogram
    return np.concatenate(
        [histogram, np.zeros(length - histogram.size, dtype=histogram.dtype)]
    )


def truncate_histogram(histogram: ArrayLike, max_size: int) -> np.ndarray:
    """Clamp group sizes above ``max_size`` down to ``max_size`` (Section 4.1).

    Every group larger than the public bound K is treated as having exactly
    K entities; the output has length ``max_size + 1``.  If the histogram is
    shorter, it is zero-padded to that length.
    """
    arr = validate_histogram(histogram)
    if max_size < 1:
        raise HistogramError(f"max_size must be >= 1, got {max_size}")
    n = max_size + 1
    if arr.size <= n:
        return pad_histogram(arr, n)
    out = arr[:n].copy()
    out[max_size] += arr[n:].sum()
    return out


class CountOfCounts:
    """Immutable count-of-counts histogram with cached representations.

    This is the user-facing value type of the library: estimators accept and
    return ``CountOfCounts`` objects, which expose all three views of
    Section 3 plus the public group count ``G`` and total entity count.

    Examples
    --------
    >>> h = CountOfCounts([0, 2, 1, 2])
    >>> h.num_groups
    5
    >>> h.num_entities
    10
    >>> list(h.cumulative)
    [0, 2, 3, 5]
    >>> list(h.unattributed)
    [1, 1, 2, 3, 3]
    """

    __slots__ = (
        "_histogram", "_cumulative", "_unattributed", "_tail",
        "_groups", "_entities",
    )

    def __init__(self, histogram: ArrayLike) -> None:
        self._histogram = validate_histogram(histogram)
        self._histogram.setflags(write=False)
        self._cumulative: Optional[np.ndarray] = None
        self._unattributed: Optional[np.ndarray] = None
        self._tail: Optional[np.ndarray] = None
        self._groups: Optional[int] = None
        self._entities: Optional[int] = None

    @classmethod
    def _trusted(cls, histogram: np.ndarray) -> "CountOfCounts":
        """Wrap an int64 histogram that is valid **by construction**.

        Skips :func:`validate_histogram` — the float round-trip there is
        measurable when the consistency kernels build thousands of nodes'
        histograms per release.  Callers own the invariants (1-d,
        nonempty, int64, nonnegative) and must hand over ownership of the
        array: it is frozen in place, not copied.
        """
        obj = cls.__new__(cls)
        obj._histogram = histogram
        obj._histogram.setflags(write=False)
        obj._cumulative = None
        obj._unattributed = None
        obj._tail = None
        obj._groups = None
        obj._entities = None
        return obj

    @classmethod
    def _from_views(
        cls,
        histogram: np.ndarray,
        cumulative: np.ndarray,
        unattributed: np.ndarray,
        suffix_sums: np.ndarray,
        num_groups: Optional[int] = None,
        num_entities: Optional[int] = None,
    ) -> "CountOfCounts":
        """Wrap precomputed views **all at once** (columnar zero-copy path).

        :class:`~repro.io.columnar.ColumnarReader` stores every derived
        representation next to ``H`` on disk — including the scalar
        group/entity counts; this constructor hands them over as
        mmap-backed read-only views so no query ever recomputes a
        ``cumsum``/``repeat``/reduction.  Like :meth:`_trusted`, callers
        own the invariants; writer-side validation plus the round-trip
        test suite is what keeps the views mutually consistent.
        """
        obj = cls.__new__(cls)
        obj._histogram = histogram
        obj._cumulative = cumulative
        obj._unattributed = unattributed
        obj._tail = suffix_sums
        obj._groups = num_groups
        obj._entities = num_entities
        for view in (histogram, cumulative, unattributed, suffix_sums):
            if view.flags.writeable:
                view.setflags(write=False)
        return obj

    @classmethod
    def from_sizes(cls, sizes: ArrayLike, length: Optional[int] = None) -> "CountOfCounts":
        """Build from raw (not necessarily sorted) group sizes."""
        arr = np.sort(np.asarray(sizes))
        return cls(unattributed_to_histogram(arr, length=length))

    @classmethod
    def from_cumulative(cls, cumulative: ArrayLike) -> "CountOfCounts":
        """Build from an ``Hc`` array."""
        return cls(cumulative_to_histogram(cumulative))

    @classmethod
    def from_unattributed(
        cls, unattributed: ArrayLike, length: Optional[int] = None
    ) -> "CountOfCounts":
        """Build from an ``Hg`` array (sorted group sizes)."""
        return cls(unattributed_to_histogram(unattributed, length=length))

    # -- views ---------------------------------------------------------------
    @property
    def histogram(self) -> np.ndarray:
        """The ``H`` view (read-only array)."""
        return self._histogram

    @property
    def cumulative(self) -> np.ndarray:
        """The ``Hc`` view (cached)."""
        if self._cumulative is None:
            self._cumulative = histogram_to_cumulative(self._histogram)
            self._cumulative.setflags(write=False)
        return self._cumulative

    @property
    def unattributed(self) -> np.ndarray:
        """The ``Hg`` view (cached)."""
        if self._unattributed is None:
            self._unattributed = histogram_to_unattributed(self._histogram)
            self._unattributed.setflags(write=False)
        return self._unattributed

    @property
    def suffix_sums(self) -> np.ndarray:
        """Suffix sums of ``Hg`` (cached): entry ``i`` is the exact total
        size of the ``i + 1`` largest groups.

        This is the working array of the top-share query family —
        ``suffix_sums[k - 1] / num_entities`` is the share held by the
        top ``k`` groups — precomputed once per histogram (and stored on
        disk by the columnar format) instead of rebuilt per query batch.

        Examples
        --------
        >>> list(CountOfCounts([0, 2, 1, 2]).suffix_sums)
        [3, 6, 8, 9, 10]
        """
        if self._tail is None:
            self._tail = np.cumsum(self.unattributed[::-1]).astype(np.int64)
            self._tail.setflags(write=False)
        return self._tail

    # -- scalar summaries ------------------------------------------------------
    @property
    def num_groups(self) -> int:
        """G, the (public) number of groups (cached)."""
        if self._groups is None:
            self._groups = int(self._histogram.sum())
        return self._groups

    @property
    def num_entities(self) -> int:
        """Total number of entities across all groups (cached)."""
        if self._entities is None:
            sizes = np.arange(self._histogram.size, dtype=np.int64)
            self._entities = int((sizes * self._histogram).sum())
        return self._entities

    @property
    def max_size(self) -> int:
        """Largest group size with a nonzero count (0 for empty data)."""
        nonzero = np.nonzero(self._histogram)[0]
        return int(nonzero[-1]) if nonzero.size else 0

    @property
    def num_distinct_sizes(self) -> int:
        """Number of distinct group sizes present (used by the omniscient
        baseline's error formula in Section 6.2)."""
        return int(np.count_nonzero(self._histogram))

    def padded(self, length: int) -> "CountOfCounts":
        """Return a copy zero-padded to ``length`` cells."""
        return CountOfCounts(pad_histogram(self._histogram, length))

    def truncated(self, max_size: int) -> "CountOfCounts":
        """Return a copy with sizes clamped to ``max_size`` (Section 4.1)."""
        return CountOfCounts(truncate_histogram(self._histogram, max_size))

    # -- dunder ----------------------------------------------------------------
    def __len__(self) -> int:
        return self._histogram.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountOfCounts):
            return NotImplemented
        a, b = self._histogram, other._histogram
        n = max(a.size, b.size)
        return bool(np.array_equal(pad_histogram(a, n), pad_histogram(b, n)))

    def __hash__(self) -> int:
        trimmed = np.trim_zeros(self._histogram, trim="b")
        return hash(trimmed.tobytes())

    def __add__(self, other: "CountOfCounts") -> "CountOfCounts":
        """Cellwise sum — count-of-counts histograms are additive (§1)."""
        if not isinstance(other, CountOfCounts):
            return NotImplemented
        n = max(len(self), len(other))
        return CountOfCounts(
            pad_histogram(self._histogram, n) + pad_histogram(other._histogram, n)
        )

    def __repr__(self) -> str:
        return (
            f"CountOfCounts(groups={self.num_groups}, "
            f"entities={self.num_entities}, max_size={self.max_size})"
        )
