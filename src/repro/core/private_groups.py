"""Private release of the Groups table (Section 3, footnote 5).

The paper treats the per-region *number of groups* as public, matching
Census practice.  Footnote 5 sketches the extension when it must be
private:

    "The most straightforward approach is to first estimate the number of
    groups in each region by adding Laplace noise to each count.  These
    estimates can be made consistent by solving a nonnegative least squares
    optimization problem.  Since there is only one number per region, it is
    a relatively small problem that can be solved with off-the-shelf
    optimizers.  Once the counts are generated they can be used with our
    algorithm."

This module implements exactly that:

1. add double-geometric noise (integer-valued, like the rest of the
   library) to every node's group count, splitting the budget across
   levels (sequential composition; parallel within a level);
2. solve the hierarchical nonnegative least squares problem.  Because the
   consistency constraint "parent = sum of children" makes internal counts
   linear functions of the leaf counts, the problem reduces to
   ``min ||A x - noisy||²`` over leaf counts ``x >= 0``, where A is the
   node-by-leaf ancestry matrix — solved exactly with scipy's NNLS;
3. round leaf counts to integers (largest remainder against the NNLS total)
   and back-substitute sums upward, so the output is integral, nonnegative
   and consistent.

The released counts can then be fed to the count-of-counts machinery as the
"public" group counts (the composition spends ``epsilon_groups +
epsilon_histograms`` in total).

Note on adjacency: noising group counts protects the *presence of a group*,
which is a different (stronger) adjacency relation than the entity-level
one used elsewhere; the sensitivity of each level's count vector under
add/remove-one-group is 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy.optimize import nnls

from repro.exceptions import EstimationError
from repro.hierarchy.tree import Hierarchy, Node
from repro.isotonic.rounding import largest_remainder_round
from repro.mechanisms.budget import PrivacyBudget
from repro.mechanisms.geometric import double_geometric


@dataclass
class PrivateGroupCounts:
    """Output of :func:`release_group_counts`.

    Attributes
    ----------
    counts:
        Consistent nonnegative integer group count per node name.
    noisy:
        The raw noisy measurements (diagnostics).
    budget:
        Privacy ledger for the release.
    """

    counts: Dict[str, int]
    noisy: Dict[str, float]
    budget: PrivacyBudget

    def __getitem__(self, name: str) -> int:
        return self.counts[name]


def _ancestry_matrix(hierarchy: Hierarchy) -> tuple:
    """Node-by-leaf 0/1 matrix: A[i, j] = leaf j lies under node i."""
    leaves = hierarchy.leaves()
    leaf_index = {id(leaf): j for j, leaf in enumerate(leaves)}
    nodes = list(hierarchy.nodes())
    matrix = np.zeros((len(nodes), len(leaves)), dtype=np.float64)

    def mark(node: Node, row: int) -> None:
        if node.is_leaf:
            matrix[row, leaf_index[id(node)]] = 1.0
            return
        for child in node.children:
            mark(child, row)

    for row, node in enumerate(nodes):
        mark(node, row)
    return nodes, leaves, matrix


def release_group_counts(
    hierarchy: Hierarchy,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> PrivateGroupCounts:
    """Release consistent private group counts for every node.

    Examples
    --------
    >>> from repro.hierarchy import from_leaf_histograms
    >>> tree = from_leaf_histograms("US", {"VA": [0, 30], "MD": [0, 20]})
    >>> released = release_group_counts(
    ...     tree, epsilon=5.0, rng=np.random.default_rng(0))
    >>> released["US"] == released["VA"] + released["MD"]
    True
    """
    if epsilon <= 0 or not np.isfinite(epsilon):
        raise EstimationError(f"epsilon must be positive, got {epsilon!r}")
    rng = rng if rng is not None else np.random.default_rng()

    budget = PrivacyBudget(epsilon)
    per_level = budget.split_levels(hierarchy.num_levels).per_part

    noisy: Dict[str, float] = {}
    for level_index, nodes in enumerate(hierarchy.levels()):
        for node in nodes:
            budget.spend(
                per_level, scope=node.name,
                parallel_group=f"groups-level{level_index}",
            )
            noise = int(double_geometric(1, per_level, 1.0, rng=rng)[0])
            noisy[node.name] = float(node.num_groups + noise)

    nodes, leaves, matrix = _ancestry_matrix(hierarchy)
    targets = np.array([noisy[node.name] for node in nodes])
    leaf_solution, _ = nnls(matrix, targets)

    # Integerize: round the leaf vector to the rounded NNLS total, then
    # back-substitute sums so internal counts are exact.
    total = int(np.rint(leaf_solution.sum()))
    leaf_counts = largest_remainder_round(leaf_solution, total)

    counts: Dict[str, int] = {
        leaf.name: int(count) for leaf, count in zip(leaves, leaf_counts)
    }
    for level_nodes in reversed(list(hierarchy.levels())):
        for node in level_nodes:
            if not node.is_leaf:
                counts[node.name] = sum(
                    counts[child.name] for child in node.children
                )
    return PrivateGroupCounts(counts=counts, noisy=noisy, budget=budget)
