"""Hierarchical consistency (Section 5 of the paper).

- :mod:`~repro.core.consistency.variance` — per-group variance estimation
  for the Hg and Hc methods (Section 5.1).
- :mod:`~repro.core.consistency.matching` — the O(G log G) optimal bipartite
  matching between a parent's groups and its children's groups (Section 5.2,
  Algorithm 2).
- :mod:`~repro.core.consistency.merge` — reconciliation of the two size
  estimates each matched group carries (Section 5.3).
- :mod:`~repro.core.consistency.topdown` — Algorithm 1, the full top-down
  consistency pipeline.
- :mod:`~repro.core.consistency.bottomup` — the bottom-up baseline of
  Section 6.2.2.
- :mod:`~repro.core.consistency.mean_consistency` — the ordinary-histogram
  mean-consistency algorithm of Hay et al., included to demonstrate why it
  fails the problem's requirements (negative and fractional cells).
- :mod:`~repro.core.consistency.kernels` — batched NumPy kernels for the
  hot path; bit-identical to the scalar references, selectable via the
  ``impl``/``consistency_impl`` knob.
"""

from repro.core.consistency.bottomup import BottomUp
from repro.core.consistency.kernels import match_family
from repro.core.consistency.matching import MatchedGroups, match_parent_to_children
from repro.core.consistency.merge import merge_matched_estimates
from repro.core.consistency.mean_consistency import mean_consistency
from repro.core.consistency.topdown import CONSISTENCY_IMPLS, ConsistentEstimates, TopDown
from repro.core.consistency.variance import group_variances

__all__ = [
    "BottomUp",
    "CONSISTENCY_IMPLS",
    "ConsistentEstimates",
    "MatchedGroups",
    "TopDown",
    "group_variances",
    "match_family",
    "match_parent_to_children",
    "mean_consistency",
    "merge_matched_estimates",
]
