"""Mean-consistency for ordinary hierarchical histograms (Hay et al. 2010).

Section 5 of the paper explains why the standard consistency algorithm for
hierarchies of ordinary histograms does *not* solve the count-of-counts
problem: it returns real-valued — and, after its subtraction step, possibly
negative — cells, cannot preserve the public per-node group counts, and
needs cell variances that the isotonic post-processing makes unavailable.

We implement it anyway (cellwise over the padded histograms, assuming equal
variances within a level) for two reasons: the A1 ablation benchmark
demonstrates the negativity/fractionality failure concretely, and tests
verify its least-squares optimality on small instances against a direct
solver — confirming our implementation is a fair representative of the
technique the paper argues against.

The algorithm is the classical two-sweep least-squares solver for the
constraint "parent = sum of children" with uniform fanout:

* **Upward sweep** — replace each internal node's noisy value with the
  minimum-variance combination of its own value and its children's sums::

      z'[v] = ((k^h − k^{h−1}) z[v] + (k^{h−1} − 1) Σ_c z'[c]) / (k^h − 1)

  where k is the fanout and h the height of v (leaves have h = 1 and
  z'[leaf] = z[leaf]; e.g. the root of a one-level star has h = 2, giving
  the closed-form weights k/(k+1) and 1/(k+1)).
* **Downward sweep** — distribute each parent's residual equally::

      h[v] = z'[v] + (h[parent] − Σ_{siblings of v incl. v} z'[s]) / k

For non-uniform fanout we use each node's own fanout and height, the
standard generalization (exact when variances are equal within each level
and the tree is regular; a good approximation otherwise).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.histogram import pad_histogram
from repro.exceptions import HierarchyError
from repro.hierarchy.tree import Hierarchy, Node


def _height(node: Node, cache: Dict[int, int]) -> int:
    """Height in Hay et al.'s convention: leaves are at height 1."""
    key = id(node)
    if key not in cache:
        cache[key] = (
            1 if node.is_leaf
            else 1 + max(_height(child, cache) for child in node.children)
        )
    return cache[key]


def mean_consistency(
    hierarchy: Hierarchy, noisy: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Least-squares consistency for cellwise hierarchical histograms.

    Parameters
    ----------
    hierarchy:
        The region tree (only its structure is used).
    noisy:
        Noisy histogram per node name.  Arrays are right-padded to a common
        length internally.

    Returns
    -------
    Dict of real-valued arrays satisfying parent = sum-of-children exactly.
    Values may be fractional and **negative** — that is the point of the A1
    experiment.
    """
    names = [node.name for node in hierarchy.nodes()]
    missing = [name for name in names if name not in noisy]
    if missing:
        raise HierarchyError(f"noisy estimates missing for nodes: {missing}")

    width = max(np.asarray(noisy[name]).size for name in names)
    z: Dict[str, np.ndarray] = {
        name: pad_histogram(
            np.asarray(noisy[name], dtype=np.float64), width
        ).astype(np.float64)
        for name in names
    }

    heights: Dict[int, int] = {}

    # Upward sweep (leaves to root).
    adjusted: Dict[str, np.ndarray] = {}
    for nodes in reversed(list(hierarchy.levels())):
        for node in nodes:
            if node.is_leaf:
                adjusted[node.name] = z[node.name]
                continue
            k = len(node.children)
            h = _height(node, heights)
            child_sum = np.sum(
                [adjusted[c.name] for c in node.children], axis=0
            )
            if k == 1:
                # Degenerate fanout: parent and child measure the same
                # quantity; average them.
                adjusted[node.name] = 0.5 * (z[node.name] + child_sum)
                continue
            k_h = float(k) ** h
            k_h1 = float(k) ** (h - 1)
            alpha = (k_h - k_h1) / (k_h - 1.0)
            adjusted[node.name] = (
                alpha * z[node.name] + (1.0 - alpha) * child_sum
            )

    # Downward sweep (root to leaves).
    consistent: Dict[str, np.ndarray] = {
        hierarchy.root.name: adjusted[hierarchy.root.name]
    }
    for nodes in hierarchy.levels():
        for parent in nodes:
            if parent.is_leaf:
                continue
            k = len(parent.children)
            sibling_sum = np.sum(
                [adjusted[c.name] for c in parent.children], axis=0
            )
            residual = (consistent[parent.name] - sibling_sum) / float(k)
            for child in parent.children:
                consistent[child.name] = adjusted[child.name] + residual

    return consistent
