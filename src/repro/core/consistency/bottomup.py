"""Bottom-up aggregation baseline (Section 6.2.2).

Spends the entire privacy budget at the leaves (one estimate per leaf,
parallel composition), then derives every internal node as the sum of its
children.  This trivially satisfies all four desiderata but — as the paper's
evaluation confirms — concentrates accuracy at the leaves while error
accumulates up the hierarchy, making the non-leaf histograms much worse than
the top-down algorithm's.

Like :class:`~repro.core.consistency.topdown.TopDown`, the aggregation
pass is selectable via ``impl=``: ``"vectorized"`` (default) sums raw
histogram arrays with
:func:`~repro.core.consistency.kernels.sum_child_histograms`;
``"reference"`` chains validated ``CountOfCounts.__add__`` calls.  Both
are bit-identical and record the aggregation under the
``consistency.backsub`` sub-span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.consistency.kernels import sum_child_histograms
from repro.core.estimators.base import Estimator, NodeEstimate
from repro.core.histogram import CountOfCounts
from repro.exceptions import EstimationError
from repro.hierarchy.tree import Hierarchy
from repro.mechanisms.budget import PrivacyBudget
from repro.perf.timer import stage


@dataclass
class BottomUpEstimates:
    """Output of the bottom-up baseline (mirrors ``ConsistentEstimates``)."""

    estimates: Dict[str, CountOfCounts]
    initial_estimates: Dict[str, NodeEstimate]
    budget: PrivacyBudget

    def __getitem__(self, name: str) -> CountOfCounts:
        return self.estimates[name]


class BottomUp:
    """Estimate leaves with the full budget; aggregate upward.

    Examples
    --------
    >>> from repro.hierarchy import from_leaf_histograms
    >>> from repro.core.estimators import CumulativeEstimator
    >>> tree = from_leaf_histograms("US", {"VA": [0, 5, 3], "MD": [0, 2, 4]})
    >>> result = BottomUp(CumulativeEstimator(max_size=10)).run(
    ...     tree, epsilon=5.0, rng=np.random.default_rng(0))
    >>> result["US"].num_groups
    14
    """

    def __init__(self, estimator: Estimator, impl: str = "vectorized") -> None:
        # Import here to avoid a cycle: topdown imports kernels, not us.
        from repro.core.consistency.topdown import CONSISTENCY_IMPLS

        if impl not in CONSISTENCY_IMPLS:
            raise EstimationError(
                f"unknown consistency impl {impl!r}; "
                f"expected one of {CONSISTENCY_IMPLS}"
            )
        self.estimator = estimator
        self.impl = impl

    def run(
        self,
        hierarchy: Hierarchy,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> BottomUpEstimates:
        if epsilon <= 0 or not np.isfinite(epsilon):
            raise EstimationError(f"epsilon must be positive, got {epsilon!r}")
        rng = rng if rng is not None else np.random.default_rng()
        budget = PrivacyBudget(epsilon)

        initial: Dict[str, NodeEstimate] = {}
        estimates: Dict[str, CountOfCounts] = {}
        with stage("noise"):
            for leaf in hierarchy.leaves():
                budget.spend(epsilon, scope=leaf.name, parallel_group="leaves")
                estimate = self.estimator.estimate(leaf.data, epsilon, rng=rng)
                initial[leaf.name] = estimate
                estimates[leaf.name] = estimate.estimate

        with stage("consistency"):
            with stage("backsub"):
                if self.impl == "reference":
                    for nodes in reversed(list(hierarchy.levels())):
                        for node in nodes:
                            if node.is_leaf:
                                continue
                            total = estimates[node.children[0].name]
                            for child in node.children[1:]:
                                total = total + estimates[child.name]
                            estimates[node.name] = total
                else:
                    # Same sums on the raw arrays, skipping the per-partial
                    # CountOfCounts re-validation of chained ``__add__``.
                    for nodes in reversed(list(hierarchy.levels())):
                        for node in nodes:
                            if node.is_leaf:
                                continue
                            estimates[node.name] = CountOfCounts._trusted(
                                sum_child_histograms(
                                    [estimates[c.name].histogram
                                     for c in node.children]
                                )
                            )

        return BottomUpEstimates(
            estimates=estimates, initial_estimates=initial, budget=budget
        )
