"""The top-down hierarchical consistency algorithm (Section 5, Algorithm 1).

Pipeline:

1. **Estimate** — split the budget evenly across the L+1 levels (sequential
   composition) and run a single-node estimator at every node (parallel
   composition within a level keeps the per-level charge at ε/(L+1)).
2. **Variance** — per-group variance estimates in the Hg view (Section 5.1).
3. **Match & merge, root to leaves** — for every parent, Algorithm 2 matches
   its (already merged) groups to its children's groups; each child group's
   two size estimates are combined by inverse-variance weighting
   (Section 5.3); merged children become the parents of the next level.
4. **Back-substitute** — leaves' merged Hg views become final histograms;
   every internal histogram is recomputed as the sum of its children.

The output therefore satisfies all four desiderata of Problem 1 by
construction: integrality and nonnegativity (sizes are rounded nonnegative
integers), group-size preservation (each node keeps exactly its public G
groups), and consistency (internal nodes are literal sums of their
children).

Two interchangeable consistency implementations (``impl=``):

* ``"vectorized"`` (default) — the batched kernels of
  :mod:`repro.core.consistency.kernels`: per-family run-length matching,
  one stacked inverse-variance merge per level, one segmented stable
  sort for the monotone restoration, and an allocation-free
  back-substitution sum.
* ``"reference"`` — the original per-parent scalar loops, kept as the
  oracle the differential suite proves the kernels bit-identical
  against.

Both record nested :func:`~repro.perf.timer.stage` sub-spans
(``consistency.matching``, ``consistency.merge``,
``consistency.isotonic`` — vectorized only, the reference merge re-sorts
inline — and ``consistency.backsub``) so ``repro perf run`` reports the
intra-stage breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.consistency.kernels import (
    level_offsets,
    match_family,
    merge_level_values,
    segment_ids,
    segmented_stable_sort,
    sum_child_histograms,
)
from repro.core.consistency.matching import (
    _reference_match_parent_to_children,
    match_parent_to_children,
)
from repro.core.consistency.merge import STRATEGIES, merge_matched_estimates
from repro.core.estimators.base import Estimator, NodeEstimate
from repro.core.estimators.selection import PerLevelSpec
from repro.core.histogram import CountOfCounts, pad_histogram
from repro.exceptions import EstimationError
from repro.hierarchy.tree import Hierarchy, Node
from repro.mechanisms.budget import PrivacyBudget
from repro.perf.timer import stage

#: The selectable consistency implementations (also accepted by
#: :class:`~repro.api.spec.ReleaseSpec` as ``consistency_impl``).
CONSISTENCY_IMPLS = ("vectorized", "reference")


@dataclass
class ConsistentEstimates:
    """Output of the top-down algorithm.

    Attributes
    ----------
    estimates:
        Final histogram per node name (all four desiderata hold).
    initial_estimates:
        The independent single-node estimates from step 1, kept for
        diagnostics and the merging experiments.
    budget:
        The privacy ledger; ``budget.spent`` equals the configured ε.
    """

    estimates: Dict[str, CountOfCounts]
    initial_estimates: Dict[str, NodeEstimate]
    budget: PrivacyBudget

    def __getitem__(self, name: str) -> CountOfCounts:
        return self.estimates[name]


@dataclass
class _NodeState:
    """Mutable per-node working state threaded through the top-down pass."""

    sizes: np.ndarray  # current (merged) Hg view, sorted int64
    variances: np.ndarray  # aligned per-group variances


class TopDown:
    """Algorithm 1: differentially private, consistent hierarchy estimates.

    Parameters
    ----------
    spec:
        A :class:`PerLevelSpec` (or a single estimator applied uniformly —
        the hierarchy's depth is read at run time).
    merge_strategy:
        ``"weighted"`` (default) or ``"naive"`` (Section 5.3 / Figure 4).
    level_weights:
        Optional per-level budget shares (positive, any scale; normalized
        internally).  The paper's Algorithm 1 uses the uniform split
        ε/(L+1) — the default — but the split is a free design choice
        under sequential composition, and the A6 ablation benchmark
        explores alternatives (leaf-heavy, root-heavy).  Must match the
        hierarchy depth at run time.
    impl:
        ``"vectorized"`` (default) runs the batched kernels;
        ``"reference"`` runs the original per-parent scalar loops.  Both
        produce bit-identical :class:`ConsistentEstimates`.

    Examples
    --------
    >>> from repro.hierarchy import from_leaf_histograms
    >>> from repro.core.estimators import CumulativeEstimator
    >>> tree = from_leaf_histograms("US", {"VA": [0, 5, 3], "MD": [0, 2, 4]})
    >>> algo = TopDown(CumulativeEstimator(max_size=10))
    >>> result = algo.run(tree, epsilon=10.0, rng=np.random.default_rng(0))
    >>> result["US"].num_groups
    14
    """

    def __init__(
        self,
        spec: Union[PerLevelSpec, Estimator],
        merge_strategy: str = "weighted",
        level_weights: Optional[np.ndarray] = None,
        impl: str = "vectorized",
    ) -> None:
        if merge_strategy not in STRATEGIES:
            raise EstimationError(
                f"unknown merge strategy {merge_strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if impl not in CONSISTENCY_IMPLS:
            raise EstimationError(
                f"unknown consistency impl {impl!r}; "
                f"expected one of {CONSISTENCY_IMPLS}"
            )
        self._spec = spec
        self.merge_strategy = merge_strategy
        self.impl = impl
        if level_weights is not None:
            level_weights = np.asarray(level_weights, dtype=np.float64)
            if level_weights.ndim != 1 or level_weights.size == 0:
                raise EstimationError("level_weights must be a nonempty 1-d array")
            if np.any(level_weights <= 0) or not np.all(np.isfinite(level_weights)):
                raise EstimationError("level_weights must be positive and finite")
        self.level_weights = level_weights

    def _per_level_budgets(self, epsilon: float, levels: int) -> np.ndarray:
        if self.level_weights is None:
            return np.full(levels, epsilon / levels)
        if self.level_weights.size != levels:
            raise EstimationError(
                f"level_weights covers {self.level_weights.size} levels but "
                f"the hierarchy has {levels}"
            )
        return epsilon * self.level_weights / self.level_weights.sum()

    def _resolve_spec(self, levels: int) -> PerLevelSpec:
        if isinstance(self._spec, PerLevelSpec):
            if self._spec.num_levels != levels:
                raise EstimationError(
                    f"spec covers {self._spec.num_levels} levels but the "
                    f"hierarchy has {levels}"
                )
            return self._spec
        return PerLevelSpec.uniform(self._spec, levels)

    def run(
        self,
        hierarchy: Hierarchy,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> ConsistentEstimates:
        """Release consistent estimates for every node of ``hierarchy``."""
        if epsilon <= 0 or not np.isfinite(epsilon):
            raise EstimationError(f"epsilon must be positive, got {epsilon!r}")
        rng = rng if rng is not None else np.random.default_rng()

        levels = hierarchy.num_levels
        spec = self._resolve_spec(levels)
        budget = PrivacyBudget(epsilon)
        level_budgets = self._per_level_budgets(epsilon, levels)

        # -- Step 1+2: independent estimates with variances at every node.
        initial: Dict[str, NodeEstimate] = {}
        with stage("noise"):
            for level_index, nodes in enumerate(hierarchy.levels()):
                estimator = spec.for_level(level_index)
                level_epsilon = float(level_budgets[level_index])
                for node in nodes:
                    budget.spend(
                        level_epsilon, scope=node.name,
                        parallel_group=f"level{level_index}",
                    )
                    initial[node.name] = estimator.estimate(
                        node.data, level_epsilon, rng=rng
                    )

        with stage("consistency"):
            if self.impl == "reference":
                estimates = self._consistency_reference(hierarchy, initial)
            else:
                estimates = self._consistency_vectorized(hierarchy, initial)

        return ConsistentEstimates(
            estimates=estimates, initial_estimates=initial, budget=budget
        )

    def _consistency_reference(
        self,
        hierarchy: Hierarchy,
        initial: Dict[str, NodeEstimate],
    ) -> Dict[str, CountOfCounts]:
        """Steps 3+4 with the original per-parent scalar loops (the oracle)."""
        # -- Step 3: match and merge from the root downward.
        state: Dict[str, _NodeState] = {
            hierarchy.root.name: _NodeState(
                sizes=initial[hierarchy.root.name].unattributed.copy(),
                variances=initial[hierarchy.root.name].variances.copy(),
            )
        }
        for nodes in hierarchy.levels():
            for parent in nodes:
                if parent.is_leaf:
                    continue
                parent_state = state[parent.name]
                children = parent.children
                with stage("matching"):
                    matched = _reference_match_parent_to_children(
                        parent_state.sizes,
                        parent_state.variances,
                        [initial[c.name].unattributed for c in children],
                        [initial[c.name].variances for c in children],
                    )
                with stage("merge"):
                    for index, child in enumerate(children):
                        sizes, variances = merge_matched_estimates(
                            initial[child.name].unattributed,
                            initial[child.name].variances,
                            matched.parent_sizes[index],
                            matched.parent_variances[index],
                            strategy=self.merge_strategy,
                        )
                        state[child.name] = _NodeState(sizes, variances)

        # -- Step 4: leaves become final; back-substitute upward.
        with stage("backsub"):
            estimates: Dict[str, CountOfCounts] = {}
            for nodes in reversed(list(hierarchy.levels())):
                for node in nodes:
                    if node.is_leaf:
                        estimates[node.name] = CountOfCounts.from_unattributed(
                            state[node.name].sizes,
                        ) if state[node.name].sizes.size else CountOfCounts([0])
                    else:
                        total = estimates[node.children[0].name]
                        for child in node.children[1:]:
                            total = total + estimates[child.name]
                        estimates[node.name] = total
        return estimates

    def _consistency_vectorized(
        self,
        hierarchy: Hierarchy,
        initial: Dict[str, NodeEstimate],
    ) -> Dict[str, CountOfCounts]:
        """Steps 3+4 with the batched kernels; bit-identical to the reference.

        Matching still walks parents one family at a time (each family's
        run-length sweep is a handful of array ops), but the merge, the
        monotone restoration, and the back-substitution each run **once
        per level** over the concatenation of every child segment.
        """
        # -- Step 3: match and merge from the root downward, level-batched.
        state: Dict[str, _NodeState] = {
            hierarchy.root.name: _NodeState(
                sizes=initial[hierarchy.root.name].unattributed.copy(),
                variances=initial[hierarchy.root.name].variances.copy(),
            )
        }
        for nodes in hierarchy.levels():
            parents = [node for node in nodes if not node.is_leaf]
            if not parents:
                continue
            child_nodes: List[Node] = []
            matched_chunks: List[np.ndarray] = []
            matched_var_chunks: List[np.ndarray] = []
            with stage("matching"):
                for parent in parents:
                    parent_state = state[parent.name]
                    children = parent.children
                    sizes, variances, _cost = match_family(
                        parent_state.sizes,
                        parent_state.variances,
                        [initial[c.name].unattributed for c in children],
                        [initial[c.name].variances for c in children],
                    )
                    child_nodes.extend(children)
                    matched_chunks.extend(sizes)
                    matched_var_chunks.extend(variances)
            counts = [initial[c.name].unattributed.size for c in child_nodes]
            with stage("merge"):
                merged, merged_variance = merge_level_values(
                    np.concatenate(
                        [initial[c.name].unattributed for c in child_nodes]
                    ),
                    np.concatenate(
                        [initial[c.name].variances for c in child_nodes]
                    ),
                    np.concatenate(matched_chunks),
                    np.concatenate(matched_var_chunks),
                    strategy=self.merge_strategy,
                )
            with stage("isotonic"):
                # Rounding can break within-child monotonicity; restore it
                # with one stable segmented sort over the whole level (the
                # merge step's per-child ``argsort(kind="stable")``, batched).
                merged, merged_variance = segmented_stable_sort(
                    merged, merged_variance, segment_ids(counts)
                )
            offsets = level_offsets(counts)
            for index, child in enumerate(child_nodes):
                state[child.name] = _NodeState(
                    sizes=merged[offsets[index]:offsets[index + 1]],
                    variances=merged_variance[offsets[index]:offsets[index + 1]],
                )

        # -- Step 4: leaves become final; back-substitute upward.
        with stage("backsub"):
            histograms: Dict[str, np.ndarray] = {}
            estimates: Dict[str, CountOfCounts] = {}
            for nodes in reversed(list(hierarchy.levels())):
                for node in nodes:
                    if node.is_leaf:
                        sizes = state[node.name].sizes
                        histogram = (
                            np.bincount(sizes, minlength=1).astype(np.int64)
                            if sizes.size
                            else np.zeros(1, dtype=np.int64)
                        )
                    else:
                        histogram = sum_child_histograms(
                            [histograms[c.name] for c in node.children]
                        )
                    histograms[node.name] = histogram
                    estimates[node.name] = CountOfCounts._trusted(histogram)
        return estimates
