"""Batched NumPy kernels for the consistency hot path.

The committed ``BENCH_pipeline.json`` names the consistency stage as the
dominant pipeline cost (65% of wall time on ``powerlaw-deep``, 53% on
the 1.5M-group ``census-households`` pack), and profiling the stage
shows almost all of it inside the per-parent matching loop of
Algorithm 2 — a Python ``while``/``for`` that steps run by run with
NumPy scalar operations and thousands of tiny allocations per family.

This module replaces element stepping with run-length arithmetic:

* :func:`match_family` — the vectorized Algorithm 2.  Both sides are
  run-length encoded once; the smallest-to-smallest sweep reduces to a
  single ``lexsort`` of the concatenated child sizes (the k-th smallest
  child group always pairs with the k-th parent entry — that is what
  makes the greedy sweep optimal), and only *contested* value segments
  (two or more children sharing a size run that straddles a parent run
  boundary) fall back to the footnote-10 proportional rounds, each on a
  ``num_children``-length array.
* :func:`merge_level_values` — one stacked inverse-variance pass over
  every child of a level at once (Equations 5 and 6 are elementwise, so
  concatenation changes nothing).
* :func:`segmented_stable_sort` — the monotone restoration of all
  merged per-child segments in one stable ``lexsort`` instead of one
  ``argsort`` per child.
* :func:`sum_child_histograms` — the back-substitution sum without
  intermediate :class:`~repro.core.histogram.CountOfCounts` re-validation.

Every kernel is **bit-identical** to the scalar reference it replaces;
``tests/consistency/test_differential.py`` proves it on randomized
hierarchies and the reference implementations stay importable as
oracles (``_reference_match_parent_to_children`` and friends).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.consistency.merge import STRATEGIES
from repro.exceptions import EstimationError, MatchingError
from repro.isotonic.rounding import proportional_allocation


def run_starts(values: np.ndarray) -> np.ndarray:
    """Start index of every maximal run of equal entries in sorted ``values``.

    Examples
    --------
    >>> list(run_starts(np.array([1, 1, 2, 5, 5, 5])))
    [0, 2, 3]
    """
    values = np.asarray(values)
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(
        [[0], np.flatnonzero(np.diff(values) != 0) + 1]
    ).astype(np.int64)


def match_family(
    parent_sizes: np.ndarray,
    parent_variances: np.ndarray,
    child_sizes: Sequence[np.ndarray],
    child_variances: Sequence[np.ndarray],
) -> Tuple[Tuple[np.ndarray, ...], Tuple[np.ndarray, ...], int]:
    """Vectorized Algorithm 2 for one family; bit-identical to the reference.

    Returns ``(per_child_parent_sizes, per_child_parent_variances, cost)``
    exactly as the scalar sweep would have produced them, including the
    deterministic parent-index consumption order within equal-size runs
    and the footnote-10 largest-remainder splits.

    Raises
    ------
    MatchingError
        Under the same preconditions as the reference (misaligned
        arrays, no children, child group counts not summing to the
        parent's).
    """
    parent_sizes = np.asarray(parent_sizes)
    parent_variances = np.asarray(parent_variances)
    if parent_sizes.shape != parent_variances.shape:
        raise MatchingError("parent sizes/variances are misaligned")
    if len(child_sizes) != len(child_variances):
        raise MatchingError("child sizes/variances lists differ in length")
    if len(child_sizes) == 0:
        raise MatchingError("matching requires at least one child")

    sizes_list = [np.asarray(arr) for arr in child_sizes]
    counts = [arr.size for arr in sizes_list]
    total_children = int(sum(counts))
    if total_children != parent_sizes.size:
        raise MatchingError(
            f"children hold {total_children} groups but parent holds "
            f"{parent_sizes.size}; a perfect matching is impossible"
        )

    num_children = len(sizes_list)
    n = parent_sizes.size
    if n == 0:
        empty_sizes = tuple(
            np.empty(0, dtype=parent_sizes.dtype) for _ in sizes_list
        )
        empty_vars = tuple(np.empty(0, dtype=np.float64) for _ in sizes_list)
        return empty_sizes, empty_vars, 0

    # The greedy sweep consumes child groups in globally sorted order
    # (ties: lower child index first, then lower position — exactly the
    # reference's per-round child iteration) and parent entries in index
    # order, so sorted position k pairs with parent index k by default.
    concat = np.concatenate(sizes_list)
    child_ids = np.repeat(
        np.arange(num_children, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
    )
    order = np.lexsort((child_ids, concat))
    sorted_sizes = concat[order]
    sorted_children = child_ids[order]

    cost = int(
        np.abs(
            parent_sizes.astype(np.int64) - sorted_sizes.astype(np.int64)
        ).sum()
    )

    assignment = np.arange(n, dtype=np.int64)

    # Value segments of the merged child side, and parent run starts.
    seg_starts = run_starts(sorted_sizes)
    seg_ends = np.concatenate([seg_starts[1:], [n]])
    parent_run_starts = run_starts(parent_sizes)

    # A segment keeps the identity assignment unless BOTH (a) two or
    # more children own entries in it and (b) a parent run boundary
    # falls strictly inside it — only then does the reference split a
    # parent run across children with largest-remainder rounding,
    # interleaving the consumption order.
    lo = np.searchsorted(parent_run_starts, seg_starts, side="right")
    hi = np.searchsorted(parent_run_starts, seg_ends, side="left")
    contested = np.flatnonzero(
        (hi > lo) & (sorted_children[seg_starts] != sorted_children[seg_ends - 1])
    )

    for index in contested:
        start = int(seg_starts[index])
        end = int(seg_ends[index])
        segment_children = sorted_children[start:end]
        present, first_rel, seg_counts = np.unique(
            segment_children, return_index=True, return_counts=True
        )
        remaining = np.zeros(num_children, dtype=np.int64)
        remaining[present] = seg_counts
        child_base = np.zeros(num_children, dtype=np.int64)
        child_base[present] = first_rel + start
        used = np.zeros(num_children, dtype=np.int64)

        cursor = start
        boundaries = parent_run_starts[int(lo[index]):int(hi[index])]
        for boundary in boundaries:
            round_total = int(boundary) - cursor
            allocation = proportional_allocation(remaining, total=round_total)
            cursor = _assign_round(
                assignment, allocation, child_base, used, cursor
            )
            remaining -= allocation
        # Final round: the parent run now extends past the segment, so
        # every remaining child entry is consumed in child order.
        _assign_round(assignment, remaining, child_base, used, cursor)

    matched_sizes = np.empty(n, dtype=parent_sizes.dtype)
    matched_vars = np.empty(n, dtype=np.float64)
    matched_sizes[order] = parent_sizes[assignment]
    matched_vars[order] = parent_variances[assignment]

    offsets = np.concatenate(
        [[0], np.cumsum(np.asarray(counts, dtype=np.int64))]
    )
    out_sizes = tuple(
        matched_sizes[offsets[c]:offsets[c + 1]] for c in range(num_children)
    )
    out_vars = tuple(
        matched_vars[offsets[c]:offsets[c + 1]] for c in range(num_children)
    )
    return out_sizes, out_vars, cost


def _assign_round(
    assignment: np.ndarray,
    allocation: np.ndarray,
    child_base: np.ndarray,
    used: np.ndarray,
    cursor: int,
) -> int:
    """Record one allocation round (children in index order); new cursor."""
    for child in np.flatnonzero(allocation):
        take = int(allocation[child])
        position = int(child_base[child] + used[child])
        assignment[position:position + take] = np.arange(
            cursor, cursor + take, dtype=np.int64
        )
        used[child] += take
        cursor += take
    return cursor


def merge_level_values(
    child_sizes: np.ndarray,
    child_variances: np.ndarray,
    parent_sizes: np.ndarray,
    parent_variances: np.ndarray,
    strategy: str = "weighted",
) -> Tuple[np.ndarray, np.ndarray]:
    """One stacked merge pass over every child of a level (Section 5.3).

    Elementwise identical to
    :func:`~repro.core.consistency.merge.merge_matched_estimates` run
    child by child — Equations 5/6 (and the naive average) touch each
    group independently, so concatenation does not change a single bit.
    Returns the **unsorted** rounded sizes and merged variances; the
    per-child monotone restoration happens in
    :func:`segmented_stable_sort`.
    """
    if strategy not in STRATEGIES:
        raise EstimationError(
            f"unknown merge strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    child_sizes = np.asarray(child_sizes, dtype=np.float64)
    parent_sizes = np.asarray(parent_sizes, dtype=np.float64)
    child_variances = np.asarray(child_variances, dtype=np.float64)
    parent_variances = np.asarray(parent_variances, dtype=np.float64)
    if child_sizes.size == 0:
        return child_sizes.astype(np.int64), child_variances

    if np.any(child_variances <= 0) or np.any(parent_variances <= 0):
        raise EstimationError("variances must be positive for merging")

    if strategy == "weighted":
        child_precision = 1.0 / child_variances
        parent_precision = 1.0 / parent_variances
        total_precision = child_precision + parent_precision
        merged = (
            child_sizes * child_precision + parent_sizes * parent_precision
        ) / total_precision
        merged_variance = 1.0 / total_precision
    else:
        merged = 0.5 * (child_sizes + parent_sizes)
        merged_variance = 0.25 * (child_variances + parent_variances)

    rounded = np.rint(merged).astype(np.int64)
    rounded = np.maximum(rounded, 0)
    return rounded, merged_variance


def segmented_stable_sort(
    values: np.ndarray,
    companions: np.ndarray,
    segment_ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort each segment of ``values`` stably; permute ``companions`` along.

    One ``lexsort`` call replaces one stable ``argsort`` per child.
    ``lexsort`` is stable per key, so within every segment the
    permutation is exactly ``np.argsort(values[segment], kind="stable")``
    — the merge step's re-sort, batched.

    Examples
    --------
    >>> v, c = segmented_stable_sort(
    ...     np.array([3, 1, 2, 0]), np.array([.3, .1, .2, .0]),
    ...     np.array([0, 0, 1, 1]))
    >>> list(v), list(c)
    ([1, 3, 0, 2], [0.1, 0.3, 0.0, 0.2])
    """
    values = np.asarray(values)
    companions = np.asarray(companions)
    segment_ids = np.asarray(segment_ids)
    if values.size == 0:
        return values, companions
    order = np.lexsort((values, segment_ids))
    return values[order], companions[order]


def sum_child_histograms(histograms: Sequence[np.ndarray]) -> np.ndarray:
    """Cellwise sum of count-of-counts arrays, padded to the longest.

    The back-substitution sum (Algorithm 1, step 4) without wrapping
    every partial sum in a validated :class:`CountOfCounts`: the result
    has the same values *and the same length* as the reference's chained
    ``CountOfCounts.__add__`` (which pads to the running maximum, ending
    at the overall maximum).
    """
    width = max(h.size for h in histograms)
    total = np.zeros(width, dtype=np.int64)
    for histogram in histograms:
        total[:histogram.size] += histogram
    return total


def level_offsets(counts: Sequence[int]) -> np.ndarray:
    """Concatenation offsets for per-child arrays: ``[0, c0, c0+c1, ...]``."""
    return np.concatenate(
        [[0], np.cumsum(np.asarray(counts, dtype=np.int64))]
    ).astype(np.int64)


def segment_ids(counts: Sequence[int]) -> np.ndarray:
    """Segment id per concatenated entry (one id per child, in order)."""
    counts = np.asarray(counts, dtype=np.int64)
    return np.repeat(np.arange(counts.size, dtype=np.int64), counts)
