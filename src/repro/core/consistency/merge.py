"""Reconciling matched size estimates (Section 5.3).

After matching, every child group carries two size estimates: its own
(from the child node's private estimate) and the matched parent group's.
Two reconciliation strategies:

* **naive** — plain average of the two estimates; appropriate only if the
  variance estimates were worthless.
* **weighted** (default) — inverse-variance weighting, the optimal linear
  combination of two unbiased estimates (Equation 5), with the combined
  variance of Equation 6.  The paper's Figure 4 shows this consistently
  beats plain averaging, confirming the Section 5.1 variance estimates are
  useful.

Merged sizes are rounded to integers and re-sorted (rounding and weighting
can disturb monotonicity by a unit; re-sorting is free because the Hg view
is order-insensitive — it represents a multiset of group sizes).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import EstimationError

#: Valid strategy names for :func:`merge_matched_estimates`.
STRATEGIES = ("weighted", "naive")


def merge_matched_estimates(
    child_sizes: np.ndarray,
    child_variances: np.ndarray,
    parent_sizes: np.ndarray,
    parent_variances: np.ndarray,
    strategy: str = "weighted",
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge each child group's two size estimates into one.

    Parameters
    ----------
    child_sizes, child_variances:
        The child's own estimates (sorted Hg view and aligned variances).
    parent_sizes, parent_variances:
        The matched parent group's size and variance for each child group
        (as produced by :func:`~repro.core.consistency.matching.match_parent_to_children`).
    strategy:
        ``"weighted"`` (Equations 5 and 6) or ``"naive"`` (plain average).

    Returns
    -------
    (sizes, variances):
        Integer merged sizes, sorted nondecreasing, with their variances
        carried through the same re-sorting permutation.
    """
    if strategy not in STRATEGIES:
        raise EstimationError(
            f"unknown merge strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    child_sizes = np.asarray(child_sizes, dtype=np.float64)
    parent_sizes = np.asarray(parent_sizes, dtype=np.float64)
    child_variances = np.asarray(child_variances, dtype=np.float64)
    parent_variances = np.asarray(parent_variances, dtype=np.float64)
    shapes = {
        child_sizes.shape, parent_sizes.shape,
        child_variances.shape, parent_variances.shape,
    }
    if len(shapes) != 1:
        raise EstimationError(f"misaligned merge inputs: shapes {shapes}")
    if child_sizes.size == 0:
        return child_sizes.astype(np.int64), child_variances

    if np.any(child_variances <= 0) or np.any(parent_variances <= 0):
        raise EstimationError("variances must be positive for merging")

    if strategy == "weighted":
        child_precision = 1.0 / child_variances
        parent_precision = 1.0 / parent_variances
        total_precision = child_precision + parent_precision
        merged = (
            child_sizes * child_precision + parent_sizes * parent_precision
        ) / total_precision
        merged_variance = 1.0 / total_precision
    else:
        merged = 0.5 * (child_sizes + parent_sizes)
        merged_variance = 0.25 * (child_variances + parent_variances)

    rounded = np.rint(merged).astype(np.int64)
    rounded = np.maximum(rounded, 0)
    order = np.argsort(rounded, kind="stable")
    return rounded[order], merged_variance[order]
