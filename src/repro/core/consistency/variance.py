"""Per-group variance estimation (Section 5.1).

After the single-node step, every node has an estimate ``Ĥg`` of its sorted
group sizes.  The merging step needs an estimate of Var(Ĥg[i]) for every i.
Neither estimator admits an exact variance (isotonic regression has no
closed form), so the paper derives usable approximations:

**Hg method** (Section 5.1.1).  L2 isotonic regression averages the noisy
values within each pooled block; noise has (Laplace-approximated) variance
2/ε², so a block of size S yields variance ``2 / (S ε²)``.  The blocks are
recoverable from the solution itself: they are the maximal runs of equal
values, i.e. S_i = #{j : Ĥg[j] = Ĥg[i]}.

**Hc method** (Section 5.1.2).  Each cumulative cell carries variance
(over-estimated as) 2/ε²; a count ``Ĥ[j] = Ĥc[j] − Ĥc[j−1]`` therefore has
variance 4/ε², and spreading that across the groups estimated to have size j
gives per-group variance ``4 / (ε² · #groups of that size)``.

Both formulas reduce to a constant divided by the multiplicity of the
group's size in ``Ĥg``, differing only in the numerator (2 vs 4).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EstimationError

#: numerator of the variance formula per method tag
_NUMERATORS = {"hg": 2.0, "hc": 4.0, "naive": 4.0}


def size_multiplicities(unattributed: np.ndarray) -> np.ndarray:
    """For each entry of a sorted ``Hg`` array, how many entries share its value.

    Examples
    --------
    >>> list(size_multiplicities(np.array([1, 1, 1, 4])))
    [3, 3, 3, 1]
    """
    arr = np.asarray(unattributed)
    n = arr.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(np.diff(arr) < 0):
        raise EstimationError("unattributed histogram must be sorted")
    boundaries = np.flatnonzero(np.diff(arr) != 0)
    starts = np.concatenate([[0], boundaries + 1])
    ends = np.concatenate([boundaries + 1, [n]])
    lengths = (ends - starts).astype(np.int64)
    return np.repeat(lengths, lengths)


def group_variances(
    unattributed: np.ndarray, epsilon: float, method: str
) -> np.ndarray:
    """Estimated Var(Ĥg[i]) for every group (Algorithm 1, line 7).

    Parameters
    ----------
    unattributed:
        The estimate's Hg view (sorted group sizes).
    epsilon:
        Privacy budget the estimate was produced with (the per-level ε₁).
    method:
        ``"hg"`` or ``"hc"`` (``"naive"`` is accepted and treated like
        ``"hc"`` so the naive baseline can flow through the same pipeline).

    Returns
    -------
    Positive float array aligned with ``unattributed``.
    """
    if method not in _NUMERATORS:
        raise EstimationError(
            f"unknown method {method!r}; expected one of {sorted(_NUMERATORS)}"
        )
    if epsilon <= 0:
        raise EstimationError(f"epsilon must be positive, got {epsilon}")
    multiplicities = size_multiplicities(np.asarray(unattributed))
    return _NUMERATORS[method] / (multiplicities.astype(np.float64) * epsilon**2)
