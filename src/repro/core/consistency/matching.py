"""Optimal parent/child group matching (Section 5.2, Algorithm 2).

Every group in a parent region also lives in exactly one child region, but
the private estimates at the two levels were produced independently, so we
do not know which estimated parent group corresponds to which estimated
child group.  The paper models this as minimum-cost perfect matching on the
complete bipartite graph whose edge weights are absolute size differences
|parent.Ĥg[i] − child.Ĥg[j]| — and proves (Lemma 5) that the greedy
smallest-to-smallest sweep is *optimal*, running in O(G log G) instead of
the O(G³) of general matching.

Implementation notes
--------------------
Both sides are processed as sorted arrays.  At each step the smallest
unmatched parent size ``st`` forms a run of ``n_t`` identical entries and
the smallest unmatched child size ``sb`` forms per-child runs totalling
``n_b`` entries:

* if ``n_t >= n_b`` every bottom group is matched now (which parent entry
  goes to which is irrelevant — they all have size ``st``);
* otherwise the ``n_t`` parent entries are split across children
  proportionally to their run lengths with largest-remainder rounding
  (footnote 10), and the leftover child groups wait for the next parent run.

The result is reported per child: for the j-th smallest group of child c,
``parent_size[c][j]`` and ``parent_variance[c][j]`` give the matched parent
group's size estimate and variance.  Parent entries are consumed in index
order, so when an updated parent carries different variances within an
equal-size run the assignment remains deterministic.

Two implementations share this contract:

* :func:`match_parent_to_children` (the default) delegates to the
  run-length-encoded kernel in
  :mod:`repro.core.consistency.kernels` — one ``lexsort`` plus
  proportional rounds only on contested segments;
* :func:`_reference_match_parent_to_children` is the original scalar
  sweep, kept as the differential-test oracle and selectable through
  ``ReleaseSpec(consistency_impl="reference")``.

``tests/consistency/test_differential.py`` asserts the two are
bit-identical (sizes, variances and cost) on randomized hierarchies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.consistency.kernels import match_family
from repro.exceptions import MatchingError
from repro.isotonic.rounding import proportional_allocation


@dataclass(frozen=True)
class MatchedGroups:
    """Matching results for the children of one parent node.

    Attributes
    ----------
    parent_sizes:
        ``parent_sizes[c][j]`` — size estimate of the parent group matched to
        the j-th smallest group of child ``c``.
    parent_variances:
        Same alignment, carrying the parent group's variance estimate.
    cost:
        Total matching cost, ``sum |parent size − child size|`` over all
        matched pairs (the objective Lemma 5 proves minimal).
    """

    parent_sizes: Tuple[np.ndarray, ...]
    parent_variances: Tuple[np.ndarray, ...]
    cost: int


def _run_length(values: np.ndarray, start: int) -> int:
    """Length of the run of entries equal to ``values[start]`` at ``start``."""
    end = int(np.searchsorted(values, values[start], side="right"))
    return end - start


def match_parent_to_children(
    parent_sizes: np.ndarray,
    parent_variances: np.ndarray,
    child_sizes: Sequence[np.ndarray],
    child_variances: Sequence[np.ndarray],
) -> MatchedGroups:
    """Run Algorithm 2 on one family via the vectorized kernel.

    Parameters
    ----------
    parent_sizes:
        Sorted Hg view of the parent's (possibly already merged) estimate.
    parent_variances:
        Per-group variances aligned with ``parent_sizes``.
    child_sizes:
        One sorted Hg array per child (their initial estimates).
    child_variances:
        Variances aligned with each child's sizes.

    Raises
    ------
    MatchingError
        If the children's group counts do not sum to the parent's (the
        perfect-matching precondition; guaranteed when group counts come
        from the public Groups table).
    """
    sizes, variances, cost = match_family(
        parent_sizes, parent_variances, child_sizes, child_variances
    )
    return MatchedGroups(
        parent_sizes=sizes, parent_variances=variances, cost=cost
    )


def _reference_match_parent_to_children(
    parent_sizes: np.ndarray,
    parent_variances: np.ndarray,
    child_sizes: Sequence[np.ndarray],
    child_variances: Sequence[np.ndarray],
) -> MatchedGroups:
    """The original scalar sweep — the oracle the kernel is proven against."""
    parent_sizes = np.asarray(parent_sizes)
    parent_variances = np.asarray(parent_variances)
    if parent_sizes.shape != parent_variances.shape:
        raise MatchingError("parent sizes/variances are misaligned")
    if len(child_sizes) != len(child_variances):
        raise MatchingError("child sizes/variances lists differ in length")
    if len(child_sizes) == 0:
        raise MatchingError("matching requires at least one child")

    total_children = sum(arr.size for arr in child_sizes)
    if total_children != parent_sizes.size:
        raise MatchingError(
            f"children hold {total_children} groups but parent holds "
            f"{parent_sizes.size}; a perfect matching is impossible"
        )

    num_children = len(child_sizes)
    out_sizes: List[np.ndarray] = [
        np.empty(arr.size, dtype=parent_sizes.dtype) for arr in child_sizes
    ]
    out_vars: List[np.ndarray] = [
        np.empty(arr.size, dtype=np.float64) for arr in child_sizes
    ]

    parent_pos = 0
    child_pos = np.zeros(num_children, dtype=np.int64)
    cost = 0

    while parent_pos < parent_sizes.size:
        st = parent_sizes[parent_pos]
        parent_run = _run_length(parent_sizes, parent_pos)

        # Smallest unmatched size among all children, and its per-child runs.
        sb = None
        for c in range(num_children):
            if child_pos[c] < child_sizes[c].size:
                value = child_sizes[c][child_pos[c]]
                if sb is None or value < sb:
                    sb = value
        assert sb is not None  # totals match, so children cannot run dry first

        bottom_runs = np.zeros(num_children, dtype=np.int64)
        for c in range(num_children):
            pos = child_pos[c]
            if pos < child_sizes[c].size and child_sizes[c][pos] == sb:
                bottom_runs[c] = _run_length(child_sizes[c], pos)
        total_bottom = int(bottom_runs.sum())

        if parent_run >= total_bottom:
            allocation = bottom_runs  # every bottom group is matched now
            matched = total_bottom
        else:
            allocation = proportional_allocation(bottom_runs, total=parent_run)
            matched = parent_run

        for c in range(num_children):
            take = int(allocation[c])
            if take == 0:
                continue
            j0 = int(child_pos[c])
            out_sizes[c][j0 : j0 + take] = parent_sizes[
                parent_pos : parent_pos + take
            ]
            out_vars[c][j0 : j0 + take] = parent_variances[
                parent_pos : parent_pos + take
            ]
            cost += take * abs(int(st) - int(sb))
            child_pos[c] += take
            parent_pos += take
        if matched == 0:
            raise MatchingError(
                "matching made no progress (internal invariant violated)"
            )

    if int(child_pos.sum()) != total_children:
        raise MatchingError("matching finished with unmatched child groups")

    return MatchedGroups(
        parent_sizes=tuple(out_sizes),
        parent_variances=tuple(out_vars),
        cost=cost,
    )


def matching_cost_lower_bound(
    parent_sizes: np.ndarray, child_sizes: Sequence[np.ndarray]
) -> int:
    """Cost of matching the globally sorted sides pointwise.

    Sorting all child groups together and matching them to the sorted parent
    groups index-by-index is a classical lower bound for this cost structure;
    Algorithm 2 achieves it, which tests exploit as a cheap optimality
    certificate on large instances (the Hungarian algorithm certifies small
    ones).
    """
    merged = np.sort(np.concatenate([np.asarray(a) for a in child_sizes]))
    parent = np.sort(np.asarray(parent_sizes))
    if merged.size != parent.size:
        raise MatchingError("sides differ in size")
    return int(np.abs(parent.astype(np.int64) - merged.astype(np.int64)).sum())
