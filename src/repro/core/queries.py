"""Analysis queries over (released) count-of-counts histograms.

Count-of-counts histograms exist to answer distributional questions — the
paper's introduction motivates them as the tool "to study the skewness of a
distribution", and unattributed histograms as answering "what is the size of
the k-th largest group?" (Section 2).  This module implements those consumer
queries so a release produced by :class:`~repro.core.consistency.topdown.TopDown`
is directly usable:

* order statistics — :func:`kth_smallest_group`, :func:`kth_largest_group`,
  :func:`size_quantile`;
* range queries — :func:`groups_with_size_at_least`,
  :func:`groups_with_size_between`, :func:`entities_in_groups_of_size_between`;
* skewness summaries — :func:`mean_group_size`, :func:`gini_coefficient`,
  :func:`top_share`.

All functions are pure post-processing of a histogram, so applying them to a
differentially private release stays differentially private.

Every parameter problem — a rank outside ``[1, G]``, a non-integral rank, a
quantile outside ``[0, 1]``, queries on an all-zero histogram — raises
:class:`~repro.exceptions.HistogramError` (never a bare ``TypeError`` /
``ValueError`` / ``IndexError``), so callers serving untrusted query
traffic can catch one exception type at the boundary.  The parameter
resolution helpers (:func:`resolve_rank`, :func:`resolve_quantile_rank`,
:func:`resolve_top_count`) are public so batched executors — the serving
planner in :mod:`repro.serve.planner` — validate with exactly the same
rules and error messages as the scalar functions.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.histogram import CountOfCounts, validate_histogram
from repro.exceptions import HistogramError

HistogramLike = Union[CountOfCounts, np.ndarray, list, tuple]


def _as_coc(histogram: HistogramLike) -> CountOfCounts:
    if isinstance(histogram, CountOfCounts):
        return histogram
    return CountOfCounts(validate_histogram(histogram))


# -- parameter resolution ----------------------------------------------------
def _as_integer(value: object, name: str) -> int:
    """Coerce an integral parameter, raising HistogramError otherwise."""
    if isinstance(value, bool):
        raise HistogramError(f"{name} must be an integer, got {value!r}")
    try:
        as_int = int(value)
    except (TypeError, ValueError, OverflowError):  # inf overflows int()
        raise HistogramError(
            f"{name} must be an integer, got {value!r}"
        ) from None
    if as_int != value:
        raise HistogramError(f"{name} must be an integer, got {value!r}")
    return as_int


def _as_fraction(value: object, name: str) -> float:
    """Coerce a float parameter, raising HistogramError otherwise."""
    if isinstance(value, bool) or not isinstance(
        value, (int, float, np.integer, np.floating)
    ):
        raise HistogramError(f"{name} must be a number, got {value!r}")
    return float(value)


def resolve_rank(data: CountOfCounts, k: object) -> int:
    """Validate an order-statistic rank against ``data``; returns it as int.

    The single definition of what a legal ``k`` is, shared by the scalar
    order statistics here and the batched kernels of the serving planner.
    """
    rank = _as_integer(k, "k")
    if data.num_groups == 0:
        raise HistogramError(
            "order statistics of an empty histogram (zero groups) "
            "are undefined"
        )
    if not 1 <= rank <= data.num_groups:
        raise HistogramError(
            f"k must be in [1, {data.num_groups}], got {rank}"
        )
    return rank


def resolve_quantile_rank(data: CountOfCounts, quantile: object) -> int:
    """Validate a quantile against ``data``; returns the 1-indexed rank."""
    value = _as_fraction(quantile, "quantile")
    if not 0.0 <= value <= 1.0:
        raise HistogramError(f"quantile must be in [0, 1], got {quantile}")
    if data.num_groups == 0:
        raise HistogramError(
            "quantile of an empty histogram (zero groups) is undefined"
        )
    return max(1, int(np.ceil(value * data.num_groups)))


def resolve_top_count(data: CountOfCounts, fraction: object) -> int:
    """Validate a top-share fraction; returns how many groups it covers."""
    value = _as_fraction(fraction, "fraction")
    if not 0.0 < value <= 1.0:
        raise HistogramError(f"fraction must be in (0, 1], got {fraction}")
    if data.num_groups == 0 or data.num_entities == 0:
        raise HistogramError("top share of empty data is undefined")
    return max(1, int(np.floor(value * data.num_groups)))


def kth_smallest_group(histogram: HistogramLike, k: int) -> int:
    """Size of the k-th smallest group (1-indexed).

    This is exactly ``Hg[k-1]`` — the unattributed-histogram query of
    Section 2.

    Examples
    --------
    >>> kth_smallest_group([0, 2, 1, 2], k=3)
    2
    """
    data = _as_coc(histogram)
    rank = resolve_rank(data, k)
    # Search the cumulative histogram instead of materializing Hg.
    return int(np.searchsorted(data.cumulative, rank, side="left"))


def kth_largest_group(histogram: HistogramLike, k: int) -> int:
    """Size of the k-th largest group (1-indexed).

    Examples
    --------
    >>> kth_largest_group([0, 2, 1, 2], k=1)
    3
    """
    data = _as_coc(histogram)
    rank = resolve_rank(data, k)
    return kth_smallest_group(data, data.num_groups - rank + 1)


def size_quantile(histogram: HistogramLike, quantile: float) -> int:
    """Smallest size s such that at least ``quantile`` of groups have
    size <= s.

    Examples
    --------
    >>> size_quantile([0, 2, 1, 2], 0.5)   # median group size
    2
    """
    data = _as_coc(histogram)
    return kth_smallest_group(data, resolve_quantile_rank(data, quantile))


def groups_with_size_at_least(histogram: HistogramLike, size: int) -> int:
    """Number of groups with at least ``size`` entities.

    Examples
    --------
    >>> groups_with_size_at_least([0, 2, 1, 2], 2)
    3
    """
    data = _as_coc(histogram)
    size = _as_integer(size, "size")
    if size <= 0:
        return data.num_groups
    if size >= len(data):
        return 0
    return int(data.num_groups - data.cumulative[size - 1])


def groups_with_size_between(
    histogram: HistogramLike, low: int, high: int
) -> int:
    """Number of groups with size in the inclusive range [low, high].

    Examples
    --------
    >>> groups_with_size_between([0, 2, 1, 2], 1, 2)
    3
    """
    low = _as_integer(low, "low")
    high = _as_integer(high, "high")
    if low > high:
        raise HistogramError(f"invalid range [{low}, {high}]")
    data = _as_coc(histogram)
    low = max(low, 0)
    upper = min(high, len(data) - 1)
    if upper < low:
        return 0
    below_low = int(data.cumulative[low - 1]) if low > 0 else 0
    return int(data.cumulative[upper] - below_low)


def entities_in_groups_of_size_between(
    histogram: HistogramLike, low: int, high: int
) -> int:
    """Number of entities living in groups whose size is in [low, high].

    Examples
    --------
    >>> entities_in_groups_of_size_between([0, 2, 1, 2], 3, 3)
    6
    """
    low = _as_integer(low, "low")
    high = _as_integer(high, "high")
    if low > high:
        raise HistogramError(f"invalid range [{low}, {high}]")
    data = _as_coc(histogram)
    sizes = np.arange(len(data))
    mask = (sizes >= low) & (sizes <= high)
    return int((sizes[mask] * data.histogram[mask]).sum())


def mean_group_size(histogram: HistogramLike) -> float:
    """Average group size (entities / groups).

    Examples
    --------
    >>> mean_group_size([0, 2, 1, 2])
    2.0
    """
    data = _as_coc(histogram)
    if data.num_groups == 0:
        raise HistogramError("mean of an empty histogram is undefined")
    return data.num_entities / data.num_groups


def gini_coefficient(histogram: HistogramLike) -> float:
    """Gini coefficient of the group-size distribution (0 = all groups the
    same size, → 1 = all entities in one group).

    The skewness summary the paper's introduction motivates count-of-counts
    histograms with.  Computed from the sorted sizes (the Hg view) as
    ``Σ (2i - n - 1) x_i / (n Σ x_i)``.

    Examples
    --------
    >>> gini_coefficient([0, 4])   # four groups of size 1: perfectly equal
    0.0
    """
    data = _as_coc(histogram)
    if data.num_groups == 0:
        raise HistogramError("gini of an empty histogram is undefined")
    if data.num_entities == 0:
        return 0.0
    sizes = data.unattributed.astype(np.float64)
    n = sizes.size
    index = np.arange(1, n + 1, dtype=np.float64)
    return float(((2 * index - n - 1) * sizes).sum() / (n * sizes.sum()))


def top_share(histogram: HistogramLike, fraction: float) -> float:
    """Share of all entities held by the largest ``fraction`` of groups.

    Examples
    --------
    >>> top_share([0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1], 0.5)
    0.8
    """
    data = _as_coc(histogram)
    count = resolve_top_count(data, fraction)
    sizes = data.unattributed
    return float(sizes[-count:].sum() / data.num_entities)
