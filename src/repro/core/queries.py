"""Analysis queries over (released) count-of-counts histograms.

Count-of-counts histograms exist to answer distributional questions — the
paper's introduction motivates them as the tool "to study the skewness of a
distribution", and unattributed histograms as answering "what is the size of
the k-th largest group?" (Section 2).  This module implements those consumer
queries so a release produced by :class:`~repro.core.consistency.topdown.TopDown`
is directly usable:

* order statistics — :func:`kth_smallest_group`, :func:`kth_largest_group`,
  :func:`size_quantile`;
* range queries — :func:`groups_with_size_at_least`,
  :func:`groups_with_size_between`, :func:`entities_in_groups_of_size_between`;
* skewness summaries — :func:`mean_group_size`, :func:`gini_coefficient`,
  :func:`top_share`.

All functions are pure post-processing of a histogram, so applying them to a
differentially private release stays differentially private.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.histogram import CountOfCounts, validate_histogram
from repro.exceptions import HistogramError

HistogramLike = Union[CountOfCounts, np.ndarray, list, tuple]


def _as_coc(histogram: HistogramLike) -> CountOfCounts:
    if isinstance(histogram, CountOfCounts):
        return histogram
    return CountOfCounts(validate_histogram(histogram))


def kth_smallest_group(histogram: HistogramLike, k: int) -> int:
    """Size of the k-th smallest group (1-indexed).

    This is exactly ``Hg[k-1]`` — the unattributed-histogram query of
    Section 2.

    Examples
    --------
    >>> kth_smallest_group([0, 2, 1, 2], k=3)
    2
    """
    data = _as_coc(histogram)
    if not 1 <= k <= data.num_groups:
        raise HistogramError(
            f"k must be in [1, {data.num_groups}], got {k}"
        )
    # Search the cumulative histogram instead of materializing Hg.
    return int(np.searchsorted(data.cumulative, k, side="left"))


def kth_largest_group(histogram: HistogramLike, k: int) -> int:
    """Size of the k-th largest group (1-indexed).

    Examples
    --------
    >>> kth_largest_group([0, 2, 1, 2], k=1)
    3
    """
    data = _as_coc(histogram)
    if not 1 <= k <= data.num_groups:
        raise HistogramError(
            f"k must be in [1, {data.num_groups}], got {k}"
        )
    return kth_smallest_group(data, data.num_groups - k + 1)


def size_quantile(histogram: HistogramLike, quantile: float) -> int:
    """Smallest size s such that at least ``quantile`` of groups have
    size <= s.

    Examples
    --------
    >>> size_quantile([0, 2, 1, 2], 0.5)   # median group size
    2
    """
    data = _as_coc(histogram)
    if not 0.0 <= quantile <= 1.0:
        raise HistogramError(f"quantile must be in [0, 1], got {quantile}")
    if data.num_groups == 0:
        raise HistogramError("quantile of an empty histogram is undefined")
    target = max(1, int(np.ceil(quantile * data.num_groups)))
    return kth_smallest_group(data, target)


def groups_with_size_at_least(histogram: HistogramLike, size: int) -> int:
    """Number of groups with at least ``size`` entities.

    Examples
    --------
    >>> groups_with_size_at_least([0, 2, 1, 2], 2)
    3
    """
    data = _as_coc(histogram)
    if size <= 0:
        return data.num_groups
    if size >= len(data):
        return 0
    return int(data.num_groups - data.cumulative[size - 1])


def groups_with_size_between(
    histogram: HistogramLike, low: int, high: int
) -> int:
    """Number of groups with size in the inclusive range [low, high].

    Examples
    --------
    >>> groups_with_size_between([0, 2, 1, 2], 1, 2)
    3
    """
    if low > high:
        raise HistogramError(f"invalid range [{low}, {high}]")
    data = _as_coc(histogram)
    low = max(low, 0)
    upper = min(high, len(data) - 1)
    if upper < low:
        return 0
    below_low = int(data.cumulative[low - 1]) if low > 0 else 0
    return int(data.cumulative[upper] - below_low)


def entities_in_groups_of_size_between(
    histogram: HistogramLike, low: int, high: int
) -> int:
    """Number of entities living in groups whose size is in [low, high].

    Examples
    --------
    >>> entities_in_groups_of_size_between([0, 2, 1, 2], 3, 3)
    6
    """
    if low > high:
        raise HistogramError(f"invalid range [{low}, {high}]")
    data = _as_coc(histogram)
    sizes = np.arange(len(data))
    mask = (sizes >= low) & (sizes <= high)
    return int((sizes[mask] * data.histogram[mask]).sum())


def mean_group_size(histogram: HistogramLike) -> float:
    """Average group size (entities / groups).

    Examples
    --------
    >>> mean_group_size([0, 2, 1, 2])
    2.0
    """
    data = _as_coc(histogram)
    if data.num_groups == 0:
        raise HistogramError("mean of an empty histogram is undefined")
    return data.num_entities / data.num_groups


def gini_coefficient(histogram: HistogramLike) -> float:
    """Gini coefficient of the group-size distribution (0 = all groups the
    same size, → 1 = all entities in one group).

    The skewness summary the paper's introduction motivates count-of-counts
    histograms with.  Computed from the sorted sizes (the Hg view) as
    ``Σ (2i - n - 1) x_i / (n Σ x_i)``.

    Examples
    --------
    >>> gini_coefficient([0, 4])   # four groups of size 1: perfectly equal
    0.0
    """
    data = _as_coc(histogram)
    if data.num_groups == 0:
        raise HistogramError("gini of an empty histogram is undefined")
    if data.num_entities == 0:
        return 0.0
    sizes = data.unattributed.astype(np.float64)
    n = sizes.size
    index = np.arange(1, n + 1, dtype=np.float64)
    return float(((2 * index - n - 1) * sizes).sum() / (n * sizes.sum()))


def top_share(histogram: HistogramLike, fraction: float) -> float:
    """Share of all entities held by the largest ``fraction`` of groups.

    Examples
    --------
    >>> top_share([0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1], 0.5)
    0.8
    """
    if not 0.0 < fraction <= 1.0:
        raise HistogramError(f"fraction must be in (0, 1], got {fraction}")
    data = _as_coc(histogram)
    if data.num_groups == 0 or data.num_entities == 0:
        raise HistogramError("top share of empty data is undefined")
    count = max(1, int(np.floor(fraction * data.num_groups)))
    sizes = data.unattributed
    return float(sizes[-count:].sum() / data.num_entities)
