"""The chaos harness: a seeded FaultPlan against the serving cluster.

:func:`run_chaos` is the differential experiment the resilience
subsystem exists to pass, driveable identically from
``repro serve chaos`` and from pytest:

1. serve one deterministic zipfian request mix through a plain
   single-process :class:`~repro.serve.engine.ServingEngine` over the
   columnar store — the **healthy baseline**;
2. serve the *same* mix through a hardened
   :class:`~repro.serve.cluster.engine.ClusterEngine` while a seeded
   :class:`~repro.resilience.faultplan.FaultPlan` SIGKILLs every
   worker at least once, stalls one worker past the heartbeat budget,
   stalls one coordinator dispatch, and flips one byte of one stored
   artifact;
3. require **bit-identical answers** for every request that did not
   exceed its deadline, zero wedged requests, recovery (respawn +
   breaker close) within the heartbeat budget, and the corruption
   detected + quarantined + rebuilt.

The resulting dict is the additive ``"resilience"`` block of
``BENCH_serving.json`` (schema v1; validated by
:func:`repro.perf.schema.validate_serving_payload`).

Failure is an *input* here: the same ``seed`` against the same store is
the same experiment, so a chaos regression reproduces locally from the
committed block's seed alone.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.api.store import ReleaseStore
from repro.exceptions import ReproError
from repro.resilience.faultplan import (
    FaultInjector,
    FaultPlan,
    corrupt_stored_artifact,
)
from repro.resilience.policies import ResilienceConfig
from repro.serve.bench import columnar_twin, run_served
from repro.serve.cluster.engine import ClusterEngine
from repro.serve.engine import ServingEngine
from repro.serve.mix import catalog_store, generate_requests
from repro.serve.planner import QueryResult
from repro.serve.spec import QuerySpec

PathLike = Union[str, Path]

#: Default request-mix size for a full chaos run.
DEFAULT_CHAOS_REQUESTS = 400

#: Request-mix size under ``--smoke`` (CI-sized, schema-identical).
SMOKE_CHAOS_REQUESTS = 120

#: Default arrival batch size (small enough that every shard sees well
#: over the plan's dispatch horizon of batches).
DEFAULT_CHAOS_BATCH_SIZE = 16

#: Worker-side stall length: deliberately *past* the heartbeat budget of
#: the hardened config, so the hung-shard path (no pong → kill →
#: respawn → retry) is exercised, not merely a slow reply.
DEFAULT_STALL_SECONDS = 2.5


def _is_deadline_error(result: QueryResult) -> bool:
    return not result.ok and "deadline" in (result.error or "")


def run_chaos(
    store: ReleaseStore,
    num_workers: int = 2,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    num_requests: int = DEFAULT_CHAOS_REQUESTS,
    batch_size: int = DEFAULT_CHAOS_BATCH_SIZE,
    resilience: Optional[ResilienceConfig] = None,
    twin_dir: Optional[PathLike] = None,
) -> Dict[str, object]:
    """Run the seeded chaos experiment; returns the ``"resilience"`` block.

    ``store`` may be JSON (a columnar twin is materialized, as in the
    other serving benches) or already columnar.  ``plan`` defaults to
    :meth:`FaultPlan.generate` for ``seed`` — the canonical schedule the
    acceptance criterion names.  ``resilience`` defaults to
    :meth:`ResilienceConfig.hardened` with the same seed, so retries
    jitter deterministically.
    """
    twin = columnar_twin(store, twin_dir)
    if len(twin) == 0:
        raise ReproError(f"store {store.directory} is empty; nothing to serve")
    config = resilience or ResilienceConfig.hardened(seed=seed)
    if plan is None:
        plan = FaultPlan.generate(
            seed, num_workers,
            stall_seconds=DEFAULT_STALL_SECONDS,
            num_artifacts=len(twin),
        )
    requests: List[QuerySpec] = list(generate_requests(
        twin, num_requests, seed=seed, catalog=catalog_store(twin),
    ))
    cache_size = max(len(twin), 1)

    # Healthy baseline first — before any byte of the store is touched.
    with ServingEngine(twin, cache_size=cache_size) as engine:
        base_results, base_seconds = run_served(
            engine, requests, batch_size=batch_size,
        )

    injector = FaultInjector(
        plan, corruptor=lambda event: corrupt_stored_artifact(twin, event),
    )
    chaos_results: List[QueryResult] = []
    with ClusterEngine(
        twin, num_workers=num_workers, cache_size=cache_size,
        resilience=config, fault_injector=injector,
    ) as cluster:
        cluster.start()
        start = time.perf_counter()
        for offset in range(0, len(requests), batch_size):
            chaos_results.extend(
                cluster.execute_batch(requests[offset: offset + batch_size])
            )
        seconds = time.perf_counter() - start
        # Let in-flight respawns settle, then demand a fully healthy
        # cluster: every worker alive again within the heartbeat budget.
        settle_until = time.monotonic() + config.heartbeat_budget
        while time.monotonic() < settle_until:
            if all(cluster.workers_alive()):
                break
            time.sleep(0.05)
        all_alive = all(cluster.workers_alive())
        respawns = sum(cluster.respawn_counts())
        recoveries = cluster.recovery_seconds()
        snapshot = cluster.cluster_snapshot()
        breakers = snapshot["breakers"]
    coordinator = cluster.metrics.snapshot()
    aggregate = snapshot["aggregate"]

    # Post-run integrity sweep: a fresh verifying store must find the
    # artifact either already healed (worker-side) or heal it now —
    # never serve the flipped byte.
    sweeper = ReleaseStore(twin.directory, write_format="columnar")
    for spec_hash in sweeper.spec_hashes():
        if sweeper.artifact_format(spec_hash) == "columnar":
            sweeper.open_columnar(spec_hash).close()
    detected = (
        int(aggregate.get("integrity_failures", 0))
        + sweeper.integrity_failures
    )
    # Quarantines performed inside worker processes increment *their*
    # stores' counters, which die with the process — the quarantine
    # directory itself is the durable record.
    quarantined = len(sweeper.quarantined_paths())
    rebuilt = sweeper.rebuilds

    # Differential verdict: every non-deadline answer bit-identical.
    mismatches = 0
    deadline_exceeded = 0
    for healthy, chaotic in zip(base_results, chaos_results):
        if _is_deadline_error(chaotic):
            deadline_exceeded += 1
            continue
        if healthy.ok != chaotic.ok:
            mismatches += 1
        elif healthy.ok:
            if (
                type(healthy.value) is not type(chaotic.value)
                or healthy.value != chaotic.value
            ):
                mismatches += 1
        elif healthy.error != chaotic.error:
            mismatches += 1
    wedged = len(requests) - len(chaos_results)
    kills = plan.counts()["kill"]
    corrupts = plan.counts()["corrupt"]
    budget = float(config.heartbeat_budget)
    within_budget = all(r <= budget for r in recoveries)
    breakers_closed = all(view["state"] == "closed" for view in breakers)
    ok = (
        mismatches == 0
        and wedged == 0
        and all_alive
        and within_budget
        and respawns >= kills
        and (corrupts == 0 or detected + quarantined + rebuilt > 0)
    )
    return {
        "seed": int(seed),
        "workers": int(num_workers),
        "num_requests": len(requests),
        "batch_size": int(batch_size),
        "plan": plan.counts(),
        "config": config.to_dict(),
        "baseline_seconds": base_seconds,
        "seconds": seconds,
        "answers_identical": mismatches == 0,
        "mismatches": mismatches,
        "deadline_exceeded": deadline_exceeded,
        "wedged_requests": wedged,
        "retries": int(aggregate.get("retries", 0)),
        "respawns": respawns,
        "all_workers_alive": all_alive,
        "breakers_closed": breakers_closed,
        "breaker_trips": int(aggregate.get("breaker_trips", 0)),
        "fallback_requests": int(aggregate.get("fallback_requests", 0)),
        "heartbeat_timeouts": int(coordinator.get("heartbeat_timeouts", 0)),
        "integrity": {
            "detected": detected,
            "quarantined": quarantined,
            "rebuilt": rebuilt,
        },
        "recovery": {
            "count": len(recoveries),
            "max_seconds": max(recoveries) if recoveries else 0.0,
            "budget_seconds": budget,
            "within_budget": within_budget,
        },
        "ok": ok,
    }


def format_chaos_table(block: Dict[str, object]) -> str:
    """A terminal summary of one chaos run."""
    plan = dict(block.get("plan", {}))
    recovery = dict(block.get("recovery", {}))
    integrity = dict(block.get("integrity", {}))
    rows = [
        ("seed", str(block.get("seed"))),
        ("workers", str(block.get("workers"))),
        ("requests", str(block.get("num_requests"))),
        ("plan", ", ".join(
            f"{kind}×{count}" for kind, count in sorted(plan.items()) if count
        ) or "(empty)"),
        ("answers identical", str(block.get("answers_identical"))),
        ("deadline exceeded", str(block.get("deadline_exceeded"))),
        ("wedged requests", str(block.get("wedged_requests"))),
        ("retries", str(block.get("retries"))),
        ("respawns", str(block.get("respawns"))),
        ("breaker trips", str(block.get("breaker_trips"))),
        ("fallback requests", str(block.get("fallback_requests"))),
        ("heartbeat timeouts", str(block.get("heartbeat_timeouts"))),
        ("integrity detected", str(integrity.get("detected"))),
        ("integrity rebuilt", str(integrity.get("rebuilt"))),
        ("recovery max", f"{recovery.get('max_seconds', 0.0):.3f}s "
                         f"(budget {recovery.get('budget_seconds', 0.0):g}s)"),
        ("verdict", "OK" if block.get("ok") else "FAILED"),
    ]
    width = max(len(label) for label, _ in rows)
    lines = ["chaos run"] + [
        f"  {label.ljust(width)}  {value}" for label, value in rows
    ]
    return "\n".join(lines)


def merge_into_report(
    block: Dict[str, object], path: PathLike
) -> Path:
    """Attach the ``"resilience"`` block to a ``BENCH_serving.json``.

    The file is created as a minimal stub when absent, so the chaos CLI
    can run before (or without) the full serving bench; when present,
    every other block is preserved untouched.
    """
    path = Path(path)
    payload: Dict[str, object] = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError as error:
            raise ReproError(
                f"cannot merge chaos block into {path}: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise ReproError(
                f"cannot merge chaos block into {path}: not a JSON object"
            )
    payload["resilience"] = dict(block)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
