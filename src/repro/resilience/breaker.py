"""Per-shard circuit breakers: closed → open → half-open → closed.

A :class:`CircuitBreaker` guards one downstream (here: one shard's
worker process).  It starts **closed** (requests flow); after
``threshold`` consecutive failures it **opens** (requests short-circuit
— the cluster routes them to the local fallback engine instead); after
``reset_timeout`` seconds it admits exactly one **half-open** probe, and
that probe's outcome decides: success closes the breaker, failure
re-opens it for another full timeout.

The time source is injectable, so the whole state machine is testable
without sleeping, and every transition is counted — the chaos report's
``breaker_trips`` / recovery-latency numbers come straight from here.
Thread-safe: the cluster's collector thread records failures while
request threads ask :meth:`allow`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ReproError

#: The three breaker states (reported in snapshots verbatim).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One downstream's failure-tracking state machine.

    ``threshold=0`` constructs a disabled breaker: it never opens, and
    :meth:`allow` is always true — the configuration the serving tier
    defaults to, preserving pre-resilience behavior.

    Examples
    --------
    >>> ticks = [0.0]
    >>> breaker = CircuitBreaker(
    ...     threshold=2, reset_timeout=1.0, clock=lambda: ticks[0])
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state, breaker.allow()
    ('open', False)
    >>> ticks[0] = 1.5
    >>> breaker.allow()         # exactly one half-open probe
    True
    >>> breaker.record_success()
    >>> breaker.state
    'closed'
    """

    def __init__(
        self,
        threshold: int,
        reset_timeout: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 0:
            raise ReproError(f"threshold must be >= 0, got {threshold}")
        if reset_timeout <= 0:
            raise ReproError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        self.threshold = int(threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probe_out = False
        #: Cumulative closed→open transitions.
        self.trips = 0
        #: Cumulative half-open→closed recoveries.
        self.recoveries = 0
        #: (opened_at, closed_at) clock pairs of completed outages.
        self._outages: List[Tuple[float, float]] = []

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when the timeout
        has elapsed (read-only peek; does not consume the probe)."""
        with self._lock:
            self._advance_locked()
            return self._state

    def _advance_locked(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._probe_out = False

    def allow(self) -> bool:
        """May a request flow to the downstream right now?

        Closed: always.  Open: no (short-circuit).  Half-open: exactly
        one caller gets ``True`` (the probe); everyone else is refused
        until the probe reports back.
        """
        if not self.enabled:
            return True
        with self._lock:
            self._advance_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_out:
                self._probe_out = True
                return True
            return False

    def record_success(self) -> None:
        """A request (or probe) succeeded: reset failures, close."""
        if not self.enabled:
            return
        with self._lock:
            self._advance_locked()
            if self._state != CLOSED and self._opened_at is not None:
                self.recoveries += 1
                self._outages.append((self._opened_at, self._clock()))
            self._state = CLOSED
            self._failures = 0
            self._opened_at = None
            self._probe_out = False

    def record_failure(self) -> None:
        """A request (or probe) failed: count up, trip at threshold."""
        if not self.enabled:
            return
        with self._lock:
            self._advance_locked()
            self._failures += 1
            if self._state == HALF_OPEN:
                # Failed probe: straight back to open, fresh timeout.
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_out = False
            elif self._state == CLOSED and self._failures >= self.threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def outage_seconds(self) -> List[float]:
        """Durations of every completed open→closed outage so far."""
        with self._lock:
            return [closed - opened for opened, closed in self._outages]

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: state, counters, consecutive failures."""
        with self._lock:
            self._advance_locked()
            return {
                "state": self._state,
                "failures": self._failures,
                "trips": self.trips,
                "recoveries": self.recoveries,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, failures={self._failures}, "
            f"trips={self.trips})"
        )
