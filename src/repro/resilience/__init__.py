"""Resilience subsystem: scripted faults in, bounded recovery out.

Four small, composable pieces:

* :mod:`~repro.resilience.faultplan` — seeded, JSON-serializable
  :class:`FaultPlan` schedules (worker SIGKILLs, hung shards, corrupted
  artifact bytes, queue stalls) and the :class:`FaultInjector` runtime
  the cluster coordinator consults at its dispatch hook points;
* :mod:`~repro.resilience.policies` — per-request :class:`Deadline`
  budgets, bounded :class:`RetryPolicy` backoff with deterministic
  jitter, and the :class:`ResilienceConfig` bundle of every serving
  knob (defaults reproduce pre-resilience behavior exactly);
* :mod:`~repro.resilience.breaker` — per-shard
  :class:`CircuitBreaker` state machines (closed/open/half-open) with
  injectable clocks;
* :mod:`~repro.resilience.janitor` — bounded, age-gated
  :func:`sweep_stale_tmp` garbage collection of temp files leaked by
  crashed writers.

The chaos harness that drives all of this end-to-end lives in
:mod:`repro.resilience.chaos` and is imported lazily by its callers
(it pulls in :mod:`repro.serve`, which itself uses this package — a
direct re-export here would be a cycle).
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.resilience.faultplan import (
    FAULT_KINDS,
    DispatchFaults,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    corrupt_stored_artifact,
)
from repro.resilience.janitor import (
    DEFAULT_MAX_AGE_SECONDS,
    DEFAULT_SWEEP_LIMIT,
    sweep_stale_tmp,
)
from repro.resilience.policies import (
    Deadline,
    ResilienceConfig,
    RetryPolicy,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "FAULT_KINDS",
    "DEFAULT_MAX_AGE_SECONDS",
    "DEFAULT_SWEEP_LIMIT",
    "CircuitBreaker",
    "Deadline",
    "DispatchFaults",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ResilienceConfig",
    "RetryPolicy",
    "corrupt_stored_artifact",
    "sweep_stale_tmp",
]
