"""Stale-tempfile garbage collection for crash-safe directories.

Every durable write in this codebase goes through the same idiom:
``tempfile.mkstemp(suffix=".tmp")`` in the target directory, write,
``os.replace`` onto the final name.  A writer SIGKILL'd between those
two steps leaks its unique temp file — harmless to correctness (readers
never see partial artifacts) but unbounded over enough crashes.

:func:`sweep_stale_tmp` is the shared janitor
:class:`~repro.api.store.ReleaseStore` and
:class:`~repro.engine.cache.ResultCache` run on open.  It is

* **age-gated** — only files older than ``max_age_seconds`` go, so a
  *live* writer's in-flight temp file (seconds old) is never yanked out
  from under its rename;
* **bounded** — at most ``limit`` files per sweep, so an open never
  stalls on a pathological backlog; the rest go next open;
* **best-effort** — a file that vanishes mid-sweep (another process'
  janitor, or the writer's own ``os.replace``) is skipped, never an
  error.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]

#: Only temp files at least this old (seconds) are collected: far above
#: any real write duration, far below "accumulating forever".
DEFAULT_MAX_AGE_SECONDS = 3600.0

#: At most this many orphans are removed per sweep.
DEFAULT_SWEEP_LIMIT = 1024


def sweep_stale_tmp(
    directory: PathLike,
    pattern: str = "*.tmp",
    max_age_seconds: float = DEFAULT_MAX_AGE_SECONDS,
    limit: int = DEFAULT_SWEEP_LIMIT,
) -> int:
    """Delete old ``pattern`` orphans under ``directory``; returns count.

    Examples
    --------
    >>> import tempfile
    >>> scratch = Path(tempfile.mkdtemp())
    >>> _ = (scratch / "orphan.tmp").write_text("partial")
    >>> os.utime(scratch / "orphan.tmp", (0, 0))   # long dead
    >>> sweep_stale_tmp(scratch)
    1
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    cutoff = time.time() - float(max_age_seconds)
    removed = 0
    for path in sorted(directory.glob(pattern)):
        if removed >= limit:
            break
        try:
            if path.stat().st_mtime > cutoff:
                continue
            os.unlink(path)
        except OSError:
            continue  # already renamed/removed by its writer or a peer
        removed += 1
    return removed
