"""Request-resilience policies: deadlines, bounded retries, config.

These are the small, deterministic value objects the serving tier's
resilience layer is built from.  None of them touch clocks or queues
themselves — a :class:`Deadline` is *started* from a caller-supplied
time source, and a :class:`RetryPolicy` only computes backoff delays —
so every policy decision is unit-testable without sleeping.

Determinism matters doubly here: the chaos differential suite
(:mod:`repro.resilience.chaos`) asserts *bit-identical* answers under
injected faults, so even the retry jitter is deterministic — a seeded
:func:`hash`-free sequence derived from the attempt number, never
``random.random()`` at serving time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ReproError

#: Default per-request deadline (seconds); ``None`` disables deadlines.
DEFAULT_DEADLINE: Optional[float] = None

#: Default cap on dispatch attempts (1 = no retries, today's behavior).
DEFAULT_MAX_ATTEMPTS = 1

#: Default first backoff delay (seconds) between dispatch attempts.
DEFAULT_BACKOFF_BASE = 0.05

#: Default multiplier applied to the backoff per additional attempt.
DEFAULT_BACKOFF_FACTOR = 2.0

#: Default ceiling on any single backoff delay (seconds).
DEFAULT_BACKOFF_MAX = 2.0

#: Default jitter fraction: each delay is scaled into
#: ``[1 - jitter, 1]`` of its nominal value, deterministically.
DEFAULT_JITTER = 0.5

# Knuth's MMIX LCG constants — used only to derive a deterministic
# jitter fraction from (seed, attempt); quality requirements are nil.
_LCG_MULTIPLIER = 6364136223846793005
_LCG_INCREMENT = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff plus deterministic jitter.

    ``max_attempts`` counts *total* dispatch attempts (1 = never retry).
    The delay before attempt ``n`` (n >= 2) is::

        base * factor**(n - 2), capped at ``max_delay``,

    scaled by a deterministic jitter fraction in ``[1 - jitter, 1]``
    derived from ``(seed, n)`` — two engines with the same seed back off
    identically, and a seed of ``None`` falls back to jitterless
    nominal delays.

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=3, base=0.1, jitter=0.0)
    >>> policy.should_retry(1), policy.should_retry(3)
    (True, False)
    >>> policy.delay(2), policy.delay(3)
    (0.1, 0.2)
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base: float = DEFAULT_BACKOFF_BASE
    factor: float = DEFAULT_BACKOFF_FACTOR
    max_delay: float = DEFAULT_BACKOFF_MAX
    jitter: float = DEFAULT_JITTER
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base < 0 or self.factor < 1 or self.max_delay < 0:
            raise ReproError(
                f"invalid backoff parameters: base={self.base}, "
                f"factor={self.factor}, max_delay={self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )

    def should_retry(self, attempt: int) -> bool:
        """True when attempt number ``attempt`` may be followed by another."""
        return attempt < self.max_attempts

    def delay(self, attempt: int) -> float:
        """Seconds to wait before dispatch attempt ``attempt`` (>= 2)."""
        if attempt <= 1:
            return 0.0
        nominal = min(
            self.base * self.factor ** (attempt - 2), self.max_delay
        )
        return nominal * self._jitter_fraction(attempt)

    def _jitter_fraction(self, attempt: int) -> float:
        if self.jitter == 0.0 or self.seed is None:
            return 1.0
        state = (int(self.seed) * 2654435761 + attempt) & _LCG_MASK
        state = (state * _LCG_MULTIPLIER + _LCG_INCREMENT) & _LCG_MASK
        unit = (state >> 11) / float(1 << 53)
        return 1.0 - self.jitter * unit


class Deadline:
    """A per-request time budget with an injectable clock.

    Started once per request; every later resilience decision (how long
    a retry may back off, whether a gather should keep waiting) asks the
    same deadline, so the request-level budget is global across
    attempts, not per attempt.  ``None`` seconds means unbounded — all
    methods then report infinite remaining time.

    Examples
    --------
    >>> ticks = iter([0.0, 1.0, 3.0]).__next__
    >>> deadline = Deadline.start(2.5, clock=ticks)
    >>> deadline.remaining()
    1.5
    >>> deadline.expired()
    True
    """

    __slots__ = ("seconds", "_clock", "_expires")

    def __init__(
        self,
        seconds: Optional[float],
        clock=time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ReproError(f"deadline must be > 0 seconds, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._expires = (
            None if seconds is None else clock() + float(seconds)
        )

    @classmethod
    def start(cls, seconds: Optional[float], clock=time.monotonic) -> "Deadline":
        """Begin a budget of ``seconds`` from now (``None`` = unbounded)."""
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded; can go negative)."""
        if self._expires is None:
            return float("inf")
        return self._expires - self._clock()

    def expired(self) -> bool:
        """True once the budget has been used up."""
        return self.remaining() <= 0.0

    def clamp(self, seconds: float) -> float:
        """``seconds`` shortened to what the deadline still allows."""
        return min(float(seconds), max(self.remaining(), 0.0))

    def __repr__(self) -> str:
        if self._expires is None:
            return "Deadline(unbounded)"
        return f"Deadline({self.seconds:g}s, remaining={self.remaining():.3f}s)"


@dataclass(frozen=True)
class ResilienceConfig:
    """Every request-resilience knob of the serving tier in one place.

    The defaults reproduce pre-resilience behavior exactly: no
    deadlines, no retries (``max_attempts=1``), breakers that never trip
    (``breaker_threshold=0`` disables them), no heartbeats and no
    fallback routing — so a :class:`~repro.serve.cluster.engine.ClusterEngine`
    constructed without a config is byte-for-byte the PR 8 engine.
    :func:`ResilienceConfig.hardened` is the everything-on profile the
    chaos harness and ``repro serve chaos`` run under.
    """

    #: Per-request wall-clock budget in seconds (``None`` = unbounded).
    request_deadline: Optional[float] = DEFAULT_DEADLINE
    #: Retry schedule for worker dispatch (1 attempt = no retries).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Consecutive shard failures before its breaker opens (0 = never).
    breaker_threshold: int = 0
    #: Seconds an open breaker waits before allowing a half-open probe.
    breaker_reset: float = 1.0
    #: Seconds between heartbeat pings to each worker (0 = disabled).
    heartbeat_interval: float = 0.0
    #: Missed-heartbeat budget: a worker silent for this many seconds is
    #: declared hung and supervised-respawned.
    heartbeat_budget: float = 5.0
    #: Route a tripped shard's requests to a coordinator-local fallback
    #: engine (graceful degradation) instead of failing them.
    fallback_local: bool = False

    def __post_init__(self) -> None:
        if self.breaker_threshold < 0:
            raise ReproError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_reset <= 0:
            raise ReproError(
                f"breaker_reset must be > 0, got {self.breaker_reset}"
            )
        if self.heartbeat_interval < 0:
            raise ReproError(
                "heartbeat_interval must be >= 0, got "
                f"{self.heartbeat_interval}"
            )
        if self.heartbeat_budget <= 0:
            raise ReproError(
                f"heartbeat_budget must be > 0, got {self.heartbeat_budget}"
            )
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ReproError(
                f"request_deadline must be > 0, got {self.request_deadline}"
            )

    @classmethod
    def hardened(
        cls,
        request_deadline: Optional[float] = 30.0,
        max_attempts: int = 4,
        seed: Optional[int] = 0,
        heartbeat_interval: float = 0.25,
        heartbeat_budget: float = 2.0,
    ) -> "ResilienceConfig":
        """The everything-on profile chaos runs and ``serve chaos`` use."""
        return cls(
            request_deadline=request_deadline,
            retry=RetryPolicy(
                max_attempts=max_attempts, base=0.02, max_delay=0.5,
                seed=seed,
            ),
            breaker_threshold=3,
            breaker_reset=0.5,
            heartbeat_interval=heartbeat_interval,
            heartbeat_budget=heartbeat_budget,
            fallback_local=True,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (recorded in chaos reports for provenance)."""
        return {
            "request_deadline": self.request_deadline,
            "max_attempts": self.retry.max_attempts,
            "backoff_base": self.retry.base,
            "backoff_factor": self.retry.factor,
            "backoff_max": self.retry.max_delay,
            "jitter": self.retry.jitter,
            "retry_seed": self.retry.seed,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset": self.breaker_reset,
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_budget": self.heartbeat_budget,
            "fallback_local": self.fallback_local,
        }
