"""Deterministic fault-injection plans for the serving cluster.

A :class:`FaultPlan` is a seeded, JSON-serializable *schedule* of
faults — worker SIGKILLs, hung/slow shards, corrupted artifact bytes,
queue stalls — and a :class:`FaultInjector` is its runtime: the
coordinator consults the injector at well-defined hook points (before
every dispatch to a shard) and the injector answers with exactly the
faults the plan scheduled for that instant.  Running the same plan
against the same store is therefore the same experiment, every time —
failure becomes a reproducible *input*, driveable identically from
``repro serve chaos`` and from pytest.

Fault kinds
-----------
``kill``
    SIGKILL shard ``shard``'s worker process immediately before its
    ``at``-th dispatch (0-based).  Exercises crash detection, respawn,
    retries and breakers.
``stall``
    Shard ``shard``'s *worker* sleeps ``seconds`` before serving its
    ``at``-th batch (0-based, counted worker-side).  Shipped to the
    worker at spawn time, so the hang happens inside the worker process
    — exactly what heartbeat health checks exist to catch.
``queue_stall``
    The *coordinator* sleeps ``seconds`` immediately before its
    ``at``-th dispatch to shard ``shard`` — a slow scatter path,
    stressing deadlines and admission backpressure rather than worker
    health.
``corrupt``
    XOR one byte (``byte_offset`` within the section region, value
    ``xor``) of the ``artifact_index``-th stored columnar artifact
    (sorted hash order) before shard ``shard``'s ``at``-th dispatch.
    Exercises CRC detection, quarantine and rebuild-from-spec.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import FaultPlanError

PathLike = Union[str, Path]

#: Every fault kind a plan may schedule.
FAULT_KINDS = ("kill", "stall", "queue_stall", "corrupt")

#: Schema version of serialized plans.
FAULT_PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (see the module docstring for semantics)."""

    kind: str
    shard: int
    at: int
    seconds: float = 0.0
    artifact_index: int = 0
    byte_offset: int = 0
    xor: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {list(FAULT_KINDS)}"
            )
        if self.shard < 0 or self.at < 0:
            raise FaultPlanError(
                f"fault trigger must be non-negative, got shard={self.shard} "
                f"at={self.at}"
            )
        if self.kind in ("stall", "queue_stall") and self.seconds <= 0:
            raise FaultPlanError(
                f"{self.kind} fault needs seconds > 0, got {self.seconds}"
            )
        if self.kind == "corrupt":
            if self.artifact_index < 0 or self.byte_offset < 0:
                raise FaultPlanError(
                    "corrupt fault needs non-negative artifact_index/"
                    f"byte_offset, got {self.artifact_index}/{self.byte_offset}"
                )
            if not 1 <= self.xor <= 255:
                raise FaultPlanError(
                    f"corrupt xor must be within [1, 255], got {self.xor}"
                )

    def to_dict(self) -> Dict[str, object]:
        view: Dict[str, object] = {
            "kind": self.kind, "shard": self.shard, "at": self.at,
        }
        if self.kind in ("stall", "queue_stall"):
            view["seconds"] = self.seconds
        if self.kind == "corrupt":
            view["artifact_index"] = self.artifact_index
            view["byte_offset"] = self.byte_offset
            view["xor"] = self.xor
        return view

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultEvent":
        try:
            return cls(
                kind=str(payload["kind"]),
                shard=int(payload["shard"]),  # type: ignore[arg-type]
                at=int(payload["at"]),  # type: ignore[arg-type]
                seconds=float(payload.get("seconds", 0.0)),  # type: ignore[arg-type]
                artifact_index=int(payload.get("artifact_index", 0)),  # type: ignore[arg-type]
                byte_offset=int(payload.get("byte_offset", 0)),  # type: ignore[arg-type]
                xor=int(payload.get("xor", 1)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise FaultPlanError(
                f"malformed fault event {payload!r}: {error}"
            ) from None


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of :class:`FaultEvent`\\ s.

    Examples
    --------
    >>> plan = FaultPlan.generate(seed=7, num_shards=2)
    >>> sorted({e.shard for e in plan.events if e.kind == "kill"})
    [0, 1]
    >>> FaultPlan.from_json(plan.to_json()) == plan
    True
    """

    seed: int
    events: Tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    # -- construction --------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        num_shards: int,
        dispatch_horizon: int = 8,
        stall_seconds: float = 0.4,
        queue_stall_seconds: float = 0.05,
        num_artifacts: int = 4,
    ) -> "FaultPlan":
        """The canonical seeded plan the acceptance criterion names.

        Deterministic in ``seed``: SIGKILLs **every** shard's worker at
        least once (at a seed-chosen dispatch index within
        ``dispatch_horizon``), stalls one shard's worker for
        ``stall_seconds``, stalls one coordinator dispatch queue, and
        corrupts one byte of one artifact.
        """
        if num_shards < 1:
            raise FaultPlanError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        rng = random.Random(int(seed))
        horizon = max(int(dispatch_horizon), 2)
        events: List[FaultEvent] = [
            FaultEvent(
                kind="kill", shard=shard, at=rng.randrange(1, horizon),
            )
            for shard in range(num_shards)
        ]
        stall_shard = rng.randrange(num_shards)
        events.append(FaultEvent(
            kind="stall", shard=stall_shard,
            at=rng.randrange(0, horizon), seconds=float(stall_seconds),
        ))
        events.append(FaultEvent(
            kind="queue_stall", shard=rng.randrange(num_shards),
            at=rng.randrange(0, horizon),
            seconds=float(queue_stall_seconds),
        ))
        events.append(FaultEvent(
            kind="corrupt", shard=rng.randrange(num_shards),
            at=rng.randrange(0, horizon),
            artifact_index=rng.randrange(max(int(num_artifacts), 1)),
            byte_offset=rng.randrange(1 << 16),
            xor=rng.randrange(1, 256),
        ))
        return cls(seed=int(seed), events=tuple(events))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "version": FAULT_PLAN_VERSION,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        version = payload.get("version", FAULT_PLAN_VERSION)
        if version != FAULT_PLAN_VERSION:
            raise FaultPlanError(
                f"unsupported fault-plan version {version!r} "
                f"(this build reads {FAULT_PLAN_VERSION})"
            )
        events = payload.get("events")
        if not isinstance(events, Sequence) or isinstance(events, str):
            raise FaultPlanError(
                f"fault plan needs an 'events' list, got {type(events).__name__}"
            )
        return cls(
            seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
            events=tuple(
                FaultEvent.from_dict(dict(event)) for event in events
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise FaultPlanError(f"fault plan is not JSON: {error}") from None
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        try:
            return cls.from_json(Path(path).read_text())
        except OSError as error:
            raise FaultPlanError(
                f"cannot read fault plan {path}: {error}"
            ) from None

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.write_text(self.to_json(indent=2) + "\n")
        return path

    # -- summaries -----------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Events per kind (the chaos report's plan summary)."""
        counts = {kind: 0 for kind in FAULT_KINDS}
        for event in self.events:
            counts[event.kind] += 1
        return counts

    def worker_stalls(self, shard: int) -> List[Tuple[int, float]]:
        """(batch index, seconds) stalls shipped to one shard's worker."""
        return [
            (event.at, event.seconds)
            for event in self.events
            if event.kind == "stall" and event.shard == shard
        ]

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class DispatchFaults:
    """What the injector scheduled for one specific dispatch."""

    kill: bool = False
    stall_seconds: float = 0.0
    corrupt: Tuple[FaultEvent, ...] = ()

    def __bool__(self) -> bool:
        return self.kill or self.stall_seconds > 0 or bool(self.corrupt)


class FaultInjector:
    """Runtime for one :class:`FaultPlan` (thread-safe, single-use).

    The cluster coordinator calls :meth:`on_dispatch` immediately before
    sending a shard its slice of a batch; the injector counts dispatches
    per shard and returns the faults whose trigger index matches.  Each
    event fires exactly once.  Worker-side ``stall`` events are not
    returned here — they ship to the worker at spawn time via
    :meth:`worker_stalls`.

    ``corruptor`` (optional) is invoked with each triggered ``corrupt``
    event — the chaos harness wires it to
    :func:`corrupt_stored_artifact` over its store; without one the
    events are still reported in the returned :class:`DispatchFaults`
    so callers can apply them however they like.
    """

    def __init__(
        self,
        plan: FaultPlan,
        corruptor: Optional[Callable[[FaultEvent], None]] = None,
    ) -> None:
        self.plan = plan
        self.corruptor = corruptor
        self._lock = threading.Lock()
        self._dispatches: Dict[int, int] = {}
        self._fired: List[FaultEvent] = []
        self._armed: List[FaultEvent] = [
            event for event in plan.events if event.kind != "stall"
        ]

    def on_dispatch(self, shard: int) -> DispatchFaults:
        """Faults scheduled for this dispatch (counts the dispatch)."""
        with self._lock:
            index = self._dispatches.get(shard, 0)
            self._dispatches[shard] = index + 1
            triggered = [
                event for event in self._armed
                if event.shard == shard and event.at == index
            ]
            for event in triggered:
                self._armed.remove(event)
                self._fired.append(event)
        faults = DispatchFaults()
        for event in triggered:
            if event.kind == "kill":
                faults.kill = True
            elif event.kind == "queue_stall":
                faults.stall_seconds += event.seconds
            elif event.kind == "corrupt":
                faults.corrupt += (event,)
                if self.corruptor is not None:
                    self.corruptor(event)
        return faults

    def worker_stalls(self, shard: int) -> List[Tuple[int, float]]:
        """The worker-side stall schedule for one shard."""
        return self.plan.worker_stalls(shard)

    def fired(self) -> List[FaultEvent]:
        """Events triggered so far, in trigger order."""
        with self._lock:
            return list(self._fired)

    def pending(self) -> List[FaultEvent]:
        """Coordinator-side events still waiting for their trigger."""
        with self._lock:
            return list(self._armed)


def corrupt_stored_artifact(
    store: "object", event: FaultEvent
) -> Path:
    """Apply one ``corrupt`` event to a store: XOR one artifact byte.

    The target is the ``artifact_index``-th stored hash (sorted order,
    wrapped modulo the store size) in its columnar form; the byte is
    chosen inside the *section region* (past the header), wrapped modulo
    the region size, so the flip lands in histogram data — exactly what
    per-section CRC verification must catch.  Returns the mutated path.
    """
    hashes = store.spec_hashes()  # type: ignore[attr-defined]
    if not hashes:
        raise FaultPlanError("cannot corrupt an empty store")
    spec_hash = hashes[event.artifact_index % len(hashes)]
    path = store.path_for(spec_hash, format="columnar")  # type: ignore[attr-defined]
    if not path.exists():
        raise FaultPlanError(
            f"no columnar artifact for {spec_hash[:12]}… to corrupt; "
            "migrate the store first"
        )
    from repro.io.columnar import header_size

    data = bytearray(path.read_bytes())
    start = header_size(path)
    if start >= len(data):  # pragma: no cover - degenerate empty artifact
        start = 0
    offset = start + (event.byte_offset % max(len(data) - start, 1))
    data[offset] ^= event.xor
    path.write_bytes(bytes(data))
    return path
