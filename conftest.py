"""Repository-level pytest configuration.

Lives at the repo root (not under tests/) because ``pytest_addoption``
hooks are only honoured in rootdir conftest files and plugins.
"""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the committed golden-regression fixtures under "
             "tests/golden/fixtures/ instead of comparing against them; "
             "review and commit the resulting diff deliberately",
    )
