"""E4 — weighted vs plain averaging when merging estimates (Figure 4).

The paper estimates 2-level hierarchies with every combination of per-level
methods (Hc×Hc, Hc×Hg, Hg×Hc) and compares the two merge strategies of
Section 5.3 across per-level budgets.  Finding: the variance-weighted
average consistently produces large error reductions at the top level and
modest ones at the second level, validating the Section 5.1 variance
estimates.  (Hg×Hg with plain averaging is so bad the paper leaves it off
the plots.)
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import EPSILON_GRID, MAX_SIZE, make_runner, scale_for
from repro.core.consistency.topdown import TopDown
from repro.core.estimators import PerLevelSpec
from repro.datasets import make_dataset
from repro.evaluation.report import format_series

DATASETS = ["housing", "white", "hawaiian"]
COMBOS = ["hc x hc", "hc x hg", "hg x hc"]


def release(spec, merge):
    algo = TopDown(spec, merge_strategy=merge)
    return lambda tree, epsilon, rng: algo.run(tree, epsilon, rng=rng).estimates


def run_dataset(name):
    tree = make_dataset(name, scale=scale_for(name)).build(seed=0)
    runner = make_runner(tree, seed=0)
    results = {}
    for combo in COMBOS:
        spec = PerLevelSpec.from_string(combo, max_size=MAX_SIZE)
        for merge in ("weighted", "naive"):
            label = f"{spec}/{merge}"
            # The x-axis of Figure 4 is the per-level budget; each level of
            # a 2-level run gets half the total.
            totals = [eps * tree.num_levels for eps in EPSILON_GRID]
            results[label] = runner.sweep(label, release(spec, merge), totals)
    return tree, results


def test_e4_weighted_vs_naive_merging(capsys):
    all_results = {}
    for name in DATASETS:
        tree, results = run_dataset(name)
        all_results[name] = results
        with capsys.disabled():
            print(f"\n[E4] Merging strategies on {name} (Figure 4)")
            for label, sweep in results.items():
                print(format_series(f"  {label}", sweep))

    # Weighted merging must beat plain averaging at the top level.  We
    # assert it strictly for the combos whose root estimate is an Hc method
    # (including the recommended default Hc×Hc) and on average across all
    # combos.  The one exception at benchmark scale is Hg×Hc on dense data
    # at the smallest budget, where the Hg root's pooled-block variances
    # are overconfident (a known reproduction deviation).
    for name, results in all_results.items():
        ratios = []
        for combo in COMBOS:
            spec = PerLevelSpec.from_string(combo, max_size=MAX_SIZE)
            weighted = np.mean([
                r.level(0).mean for r in results[f"{spec}/weighted"]
            ])
            naive = np.mean([
                r.level(0).mean for r in results[f"{spec}/naive"]
            ])
            ratios.append(weighted / max(naive, 1.0))
            if combo.startswith("hc"):
                assert weighted <= naive * 1.05, (
                    f"weighted merging should win at the root "
                    f"({name}, {spec}): {weighted:,.0f} vs {naive:,.0f}"
                )
        assert np.mean(ratios) < 1.0, (
            f"weighted merging should win on average across combos ({name})"
        )


def test_e4_merge_benchmark(benchmark):
    tree = make_dataset("white", scale=scale_for("white")).build(seed=0)
    spec = PerLevelSpec.from_string("hc x hc", max_size=MAX_SIZE)
    algo = TopDown(spec, merge_strategy="weighted")
    rng = np.random.default_rng(0)
    benchmark(lambda: algo.run(tree, 1.0, rng=rng))
