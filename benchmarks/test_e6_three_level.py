"""E6 — 3-level hierarchy results (Figure 6).

The paper estimates 3-level hierarchies — census-like data restricted to
the west coast (for computational reasons; ~3,000 isotonic regressions
otherwise), taxi on its full geography — with Hg×Hg×Hg and Hc×Hc×Hc.
Finding: neither method dominates everywhere, but Hc-based estimation
generally performs better and is the recommended default.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import EPSILON_GRID, MAX_SIZE, make_runner, scale_for
from repro.core.consistency.topdown import TopDown
from repro.core.estimators import CumulativeEstimator, UnattributedEstimator
from repro.datasets import make_dataset
from repro.evaluation.report import format_series

DATASETS = ["housing", "white", "hawaiian", "taxi"]


def build_tree(name):
    generator = make_dataset(name, scale=scale_for(name), levels=3)
    if name == "taxi":
        return generator.build(seed=0)  # taxi uses its full geography
    return generator.west_coast(seed=0)


def release(estimator):
    algo = TopDown(estimator)
    return lambda tree, epsilon, rng: algo.run(tree, epsilon, rng=rng).estimates


def test_e6_three_level_consistency(capsys):
    summary = {}
    for name in DATASETS:
        tree = build_tree(name)
        runner = make_runner(tree, seed=0)
        totals = [eps * tree.num_levels for eps in EPSILON_GRID]
        results = {
            "Hc×Hc×Hc": runner.sweep(
                "Hc×Hc×Hc", release(CumulativeEstimator(max_size=MAX_SIZE)),
                totals,
            ),
            "Hg×Hg×Hg": runner.sweep(
                "Hg×Hg×Hg", release(UnattributedEstimator()), totals
            ),
        }
        summary[name] = results
        with capsys.disabled():
            print(f"\n[E6] 3-level consistency on {name} (Figure 6)")
            for label, sweep in results.items():
                print(format_series(f"  {label}", sweep))

    for name, results in summary.items():
        for label, sweep in results.items():
            # Errors are finite at every level and generally improve with ε.
            for result in sweep:
                assert all(np.isfinite(s.mean) for s in result.levels)
            assert sweep[-1].level(0).mean <= sweep[0].level(0).mean * 1.5

    # The paper's default recommendation: Hc generally at least competitive.
    wins = sum(
        np.mean([r.level(0).mean for r in results["Hc×Hc×Hc"]])
        <= np.mean([r.level(0).mean for r in results["Hg×Hg×Hg"]])
        for results in summary.values()
    )
    assert wins >= 2, "Hc should win at the root on at least half the datasets"


def test_e6_release_benchmark(benchmark):
    tree = build_tree("hawaiian")
    algo = TopDown(CumulativeEstimator(max_size=MAX_SIZE))
    rng = np.random.default_rng(0)
    benchmark(lambda: algo.run(tree, 1.0, rng=rng))
