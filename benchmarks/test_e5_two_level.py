"""E5 — 2-level hierarchy results (Figure 5).

The paper estimates National/State (taxi: Manhattan/halves) hierarchies
with Hg×Hg and Hc×Hc (weighted merging) across per-level budgets and
compares against the omniscient baseline.  Findings to reproduce:

* the better method is comparable to the omniscient error floor;
* Hc×Hc generally wins on dense data (white, taxi);
* on sparse-at-the-top data (housing's heavy tail, hawaiian) Hg-based
  methods are competitive;
* everything improves as ε grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import EPSILON_GRID, MAX_SIZE, make_runner, scale_for
from repro.core.consistency.topdown import TopDown
from repro.core.estimators import CumulativeEstimator, UnattributedEstimator
from repro.datasets import make_dataset
from repro.evaluation.omniscient import OmniscientBaseline
from repro.evaluation.report import format_series

DATASETS = ["housing", "white", "hawaiian", "taxi"]


def build_tree(name):
    return make_dataset(name, scale=scale_for(name), levels=2).build(seed=0)


def release(estimator):
    algo = TopDown(estimator)
    return lambda tree, epsilon, rng: algo.run(tree, epsilon, rng=rng).estimates


def test_e5_two_level_consistency(capsys):
    summary = {}
    for name in DATASETS:
        tree = build_tree(name)
        runner = make_runner(tree, seed=0)
        totals = [eps * tree.num_levels for eps in EPSILON_GRID]
        results = {
            "Hc×Hc": runner.sweep(
                "Hc×Hc", release(CumulativeEstimator(max_size=MAX_SIZE)), totals
            ),
            "Hg×Hg": runner.sweep(
                "Hg×Hg", release(UnattributedEstimator()), totals
            ),
        }
        omniscient = {
            eps: OmniscientBaseline().expected_level_error(
                tree, eps * tree.num_levels, level=0
            )
            for eps in EPSILON_GRID
        }
        summary[name] = (tree, results, omniscient)

        with capsys.disabled():
            print(f"\n[E5] 2-level consistency on {name} (Figure 5)")
            for label, sweep in results.items():
                print(format_series(f"  {label}", sweep))
            print("  omniscient (level 0 expectation):")
            for eps, value in omniscient.items():
                print(f"    eps/level={eps:<6g} emd={value:>14,.1f}")

    for name, (tree, results, omniscient) in summary.items():
        # Error decreases with budget for the recommended method.
        hc = results["Hc×Hc"]
        assert hc[-1].level(0).mean < hc[0].level(0).mean

        # The best method is within an order of magnitude of omniscient at
        # the largest budget (the paper: "comparable").
        best = min(r.level(0).mean for r in (results["Hc×Hc"][-1],
                                             results["Hg×Hg"][-1]))
        assert best < 20 * max(omniscient[EPSILON_GRID[-1]], 1.0)

    # Hc dominates on the dense datasets at the root.
    for name in ("white", "taxi"):
        _, results, _ = summary[name]
        hc_root = np.mean([r.level(0).mean for r in results["Hc×Hc"]])
        hg_root = np.mean([r.level(0).mean for r in results["Hg×Hg"]])
        assert hc_root < hg_root, f"Hc should win on dense data ({name})"


@pytest.mark.parametrize("method", ["hc", "hg"])
def test_e5_release_benchmark(benchmark, method):
    tree = build_tree("hawaiian")
    estimator = (
        CumulativeEstimator(max_size=MAX_SIZE) if method == "hc"
        else UnattributedEstimator()
    )
    algo = TopDown(estimator)
    rng = np.random.default_rng(0)
    benchmark(lambda: algo.run(tree, 1.0, rng=rng))
