"""A8 — parallel experiment engine vs the serial shim.

The paper's evaluation grid (Section 6.2) repeats every (method, ε)
configuration 10 times; the seed implementation walked that grid serially.
This benchmark pits the engine (:mod:`repro.engine`) against the legacy
serial path on a 4-method × 3-ε × 10-trial grid and checks, in order of
importance:

1. **Bit-identical results** — the engine's serial and process modes
   produce exactly equal per-cell EMDs (stable SHA-256 per-cell seeding
   makes cells independent of execution order and process placement).
2. **Wall-clock win on multi-core machines** — with ≥ 4 visible cores the
   process mode must finish the grid at least 2× faster than the serial
   shim (a softer 1.2× bar applies on 2-3 cores where pool overhead eats
   more of the gain; single-core runners skip the timing assertion).
3. **Incremental reruns** — a second run against the on-disk cache
   recomputes nothing and is far faster than computing.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import scale_for
from repro.core.consistency.bottomup import BottomUp
from repro.core.consistency.topdown import TopDown
from repro.core.estimators import (
    CumulativeEstimator,
    NaiveEstimator,
    UnattributedEstimator,
)
from repro.datasets import make_dataset
from repro.engine import ExperimentGrid, MethodSpec, ResultCache, run_grid
from repro.evaluation.runner import ExperimentRunner
from repro.perf import StageTimer

#: The grid the acceptance criterion calls for: >= 4 methods, >= 3 epsilons,
#: 10 trials.
MAX_SIZE = 2_000
EPSILONS = (0.1, 0.5, 1.0)
TRIALS = 10

METHODS = [
    MethodSpec.topdown("hc", max_size=MAX_SIZE, label="Hc×Hc"),
    MethodSpec.topdown("hg", max_size=MAX_SIZE, label="Hg×Hg"),
    MethodSpec.topdown("naive", max_size=MAX_SIZE, label="Naive"),
    MethodSpec.bottomup("hg", max_size=MAX_SIZE, label="BU-Hg"),
]


def build_tree():
    return make_dataset("housing", scale=scale_for("housing") / 8).build(seed=0)


def serial_estimators():
    return {
        "Hc×Hc": lambda t, e, r: TopDown(
            CumulativeEstimator(max_size=MAX_SIZE)).run(t, e, rng=r).estimates,
        "Hg×Hg": lambda t, e, r: TopDown(
            UnattributedEstimator()).run(t, e, rng=r).estimates,
        "Naive": lambda t, e, r: TopDown(
            NaiveEstimator(max_size=MAX_SIZE)).run(t, e, rng=r).estimates,
        "BU-Hg": lambda t, e, r: BottomUp(
            UnattributedEstimator()).run(t, e, rng=r).estimates,
    }


def test_a8_engine_bit_identical_and_faster(capsys, tmp_path):
    tree = build_tree()
    grid = ExperimentGrid(tree, METHODS, epsilons=EPSILONS,
                          trials=TRIALS, seed=0)
    cores = os.cpu_count() or 1

    timer = StageTimer()

    # -- the legacy serial path: one ExperimentRunner sweep per method.
    runner = ExperimentRunner(tree, runs=TRIALS, seed=0, mode="serial")
    with timer.stage("serial"):
        for label, release in serial_estimators().items():
            runner.sweep(label, release, list(EPSILONS))
    serial_seconds = timer.seconds("serial")

    # -- the engine, serial then parallel: results must match exactly.
    engine_serial = run_grid(grid, mode="serial")
    with timer.stage("parallel"):
        engine_parallel = run_grid(grid, mode="process", workers=cores)
    parallel_seconds = timer.seconds("parallel")
    assert engine_parallel == engine_serial  # bit-identical, any cell order

    # -- incremental rerun: everything comes from the cache.
    cache = ResultCache(tmp_path / "cells")
    run_grid(grid, mode="serial", cache=cache)
    with timer.stage("cached"):
        cached = run_grid(grid, mode="serial", cache=cache)
    cached_seconds = timer.seconds("cached")
    assert all(cell.cached for cell in cached)
    assert [c.level_emd for c in cached] == [c.level_emd for c in engine_serial]

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    with capsys.disabled():
        print(f"\n[A8] engine speedup on {len(METHODS)} methods x "
              f"{len(EPSILONS)} eps x {TRIALS} trials "
              f"({tree.root.num_groups:,} groups, {cores} core(s))")
        print(f"  serial shim     {serial_seconds:8.2f} s")
        print(f"  engine process  {parallel_seconds:8.2f} s  "
              f"({speedup:.2f}x)")
        print(f"  cached rerun    {cached_seconds:8.2f} s  "
              f"({len(cached)} cells, all hits)")

    # Wall-clock assertions only hold on quiet machines; shared CI runners
    # (noisy neighbours) still exercise correctness but skip the timing bars.
    if os.environ.get("CI"):
        pytest.skip("shared CI runner: timing assertions not meaningful")

    # Cached reruns must crush recomputation regardless of core count.
    assert cached_seconds < serial_seconds / 5

    # The 2x acceptance bar applies on multi-core runners; pool overhead
    # makes it unreachable (and meaningless) on a single visible core.
    if cores >= 4:
        assert speedup >= 2.0, f"expected >= 2x, measured {speedup:.2f}x"
    elif cores >= 2:
        assert speedup >= 1.2, f"expected >= 1.2x, measured {speedup:.2f}x"
    else:
        pytest.xfail("single-core runner: timing assertion not applicable")
