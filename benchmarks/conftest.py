"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper (see the
method index in README.md) and prints paper-style rows.  Four
environment variables trade fidelity for speed:

* ``REPRO_SCALE`` — multiplies each dataset's default scale factor
  (default 1.0; raise toward paper magnitude on a big machine).
* ``REPRO_RUNS`` — repetitions per configuration (default 3; the paper
  used 10).
* ``REPRO_ENGINE`` — execution mode for the experiment engine
  (:mod:`repro.engine`): ``serial`` (default), ``process`` or ``auto``.
* ``REPRO_WORKERS`` — worker processes for the parallel modes
  (default: all visible cores).

All multi-run benchmarks route through the engine via
:func:`make_runner`, so setting ``REPRO_ENGINE=process`` fans every
experiment grid out across cores with bit-identical results.

Benchmarks are pytest-benchmark targets: the *timed* body is one full
release (estimate + consistency) at a representative ε, while the printed
experiment uses the multi-run harness.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.evaluation.runner import ExperimentRunner
from repro.perf import timed

#: Dataset scale factors sized so the full benchmark suite runs in minutes
#: while keeping per-node group counts large enough that the paper's method
#: ordering is not swamped by small-sample effects (tuned empirically).
BASE_SCALES = {
    "housing": 1e-3,
    "white": 1e-2,
    "hawaiian": 1e-2,
    "taxi": 1e-1,
}

#: Public group-size bound K.  The paper used 100,000 on data whose largest
#: group was ~10,000 (one order of magnitude of slack); we keep the same
#: slack at benchmark scale.
MAX_SIZE = 20_000

#: ε grid of the paper's figures (per-level budgets on the x-axis).
EPSILON_GRID = (0.1, 0.5, 1.0)


def scale_for(name: str) -> float:
    return BASE_SCALES[name] * float(os.environ.get("REPRO_SCALE", "1.0"))


def num_runs() -> int:
    return int(os.environ.get("REPRO_RUNS", "3"))


def engine_mode() -> str:
    return os.environ.get("REPRO_ENGINE", "serial")


def engine_workers():
    value = os.environ.get("REPRO_WORKERS")
    return int(value) if value else None


def make_runner(tree, runs=None, seed=0) -> ExperimentRunner:
    """An :class:`ExperimentRunner` wired to the engine's configured mode."""
    return ExperimentRunner(
        tree,
        runs=runs if runs is not None else num_runs(),
        seed=seed,
        mode=engine_mode(),
        workers=engine_workers(),
    )


def release_seconds(tree, algorithm, epsilon=1.0, seed=0) -> float:
    """Wall-clock of one full release on the shared perf clock.

    The single timing idiom for all benchmarks (``repro.perf.timed``,
    the same monotonic clock the profiling harness uses), replacing the
    per-file ``perf_counter`` arithmetic that used to be duplicated.
    """
    _, seconds = timed(
        algorithm.run, tree, epsilon, rng=np.random.default_rng(seed)
    )
    return seconds


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2018)
