"""E1 — the dataset statistics table of Section 6.1.

Paper table (full scale):

    Data       #groups      #people/trip   #unique sizes
    Synthetic  240,908,081  605,304,918    2352
    White      11,155,486   226,378,365    1916
    Hawaiian   11,155,486   540,383        224
    Taxi       360,872      130,962,398    3128

We regenerate the same row structure at benchmark scale; the *relative*
shape (hawaiian sparse, taxi dense with high mean size, synthetic heavy
tailed) is the reproduction target.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scale_for
from repro.datasets import make_dataset

DATASETS = ["housing", "white", "hawaiian", "taxi"]


def build(name):
    return make_dataset(name, scale=scale_for(name)).build(seed=0)


def test_e1_dataset_statistics_table(capsys):
    rows = []
    for name in DATASETS:
        stats = build(name).statistics()
        rows.append((name, stats))

    with capsys.disabled():
        print("\n[E1] Dataset statistics (Section 6.1), benchmark scale")
        print(f"{'data':>10}{'groups':>14}{'entities':>14}"
              f"{'unique sizes':>14}{'max size':>10}")
        for name, stats in rows:
            print(f"{name:>10}{stats['groups']:>14,}{stats['entities']:>14,}"
                  f"{stats['distinct_sizes']:>14,}{stats['max_size']:>10,}")

    stats = dict(rows)
    # Shape assertions mirroring the paper's table.
    assert stats["white"]["groups"] == stats["hawaiian"]["groups"]
    assert stats["hawaiian"]["entities"] < 0.05 * stats["white"]["entities"]
    assert stats["hawaiian"]["distinct_sizes"] < stats["white"]["distinct_sizes"]
    assert stats["taxi"]["entities"] / stats["taxi"]["groups"] > 100
    assert stats["housing"]["max_size"] > 1_000  # synthetic outlier tail


@pytest.mark.parametrize("name", DATASETS)
def test_e1_generation_benchmark(benchmark, name):
    benchmark(build, name)
