"""A1 — why mean-consistency fails the problem requirements (Section 5).

The paper argues the standard hierarchical consistency algorithm for
ordinary histograms (Hay et al.) cannot be used for count-of-counts data:
its subtraction step produces fractional and *negative* cells, and it
cannot preserve the public per-node group counts.  This ablation runs
mean-consistency on noisy count-of-counts inputs and measures how often the
requirements are violated, next to the top-down algorithm which never
violates them.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import num_runs, scale_for
from repro.core.consistency.mean_consistency import mean_consistency
from repro.core.consistency.topdown import TopDown
from repro.core.estimators import CumulativeEstimator
from repro.datasets import make_dataset
from repro.mechanisms.geometric import double_geometric


def test_a1_mean_consistency_violations(capsys):
    tree = make_dataset("hawaiian", scale=scale_for("hawaiian")).build(seed=0)
    width = len(tree.root.data) + 1

    negative_runs = 0
    fractional_runs = 0
    group_count_violations = 0
    for seed in range(num_runs()):
        rng = np.random.default_rng(seed)
        noisy = {
            node.name: node.data.padded(width).histogram
            + double_geometric(width, epsilon=0.5, rng=rng)
            for node in tree.nodes()
        }
        consistent = mean_consistency(tree, noisy)
        values = np.concatenate(list(consistent.values()))
        if np.any(values < 0):
            negative_runs += 1
        if not np.allclose(values, np.rint(values)):
            fractional_runs += 1
        root_total = consistent[tree.root.name].sum()
        if abs(root_total - tree.root.num_groups) > 0.5:
            group_count_violations += 1

    algo = TopDown(CumulativeEstimator(max_size=width))
    result = algo.run(tree, 1.0, rng=np.random.default_rng(0))
    topdown_ok = all(
        np.all(result[node.name].histogram >= 0)
        and result[node.name].num_groups == node.num_groups
        for node in tree.nodes()
    )

    with capsys.disabled():
        print("\n[A1] Mean-consistency requirement violations "
              f"({num_runs()} runs, eps=0.5 noise)")
        print(f"  runs with negative cells:      {negative_runs}/{num_runs()}")
        print(f"  runs with fractional cells:    {fractional_runs}/{num_runs()}")
        print(f"  runs violating group counts:   "
              f"{group_count_violations}/{num_runs()}")
        print(f"  top-down violations:           0 (by construction: "
              f"{'verified' if topdown_ok else 'FAILED'})")

    assert negative_runs == num_runs(), "subtraction step should go negative"
    assert fractional_runs == num_runs()
    assert topdown_ok


def test_a1_mean_consistency_benchmark(benchmark):
    tree = make_dataset("hawaiian", scale=scale_for("hawaiian")).build(seed=0)
    width = len(tree.root.data) + 1
    rng = np.random.default_rng(0)
    noisy = {
        node.name: node.data.padded(width).histogram
        + double_geometric(width, epsilon=0.5, rng=rng)
        for node in tree.nodes()
    }
    benchmark(lambda: mean_consistency(tree, noisy))
