"""E8 — calibrating the omniscient baseline (Section 6.2, "Interpreting
error").

The paper anchors its figures with the omniscient algorithm's expected
error, ``#distinct group sizes × √2/ε per level`` — e.g. 2,352 distinct
sizes at ε = 0.1/level ≈ 3.3 × 10⁴.  We verify that (a) the simulated
omniscient error matches the closed form up to the Laplace mean-vs-std
constant, and (b) the top-down Hc algorithm's root error lands within a
small factor of the omniscient floor, which is what "comparable to the
omniscient baseline" means in Figure 5.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import EPSILON_GRID, MAX_SIZE, num_runs, scale_for
from repro.core.consistency.topdown import TopDown
from repro.core.estimators import CumulativeEstimator
from repro.core.metrics import earthmover_distance
from repro.datasets import make_dataset
from repro.evaluation.omniscient import (
    OmniscientBaseline,
    omniscient_expected_error,
)

DATASETS = ["housing", "white", "hawaiian", "taxi"]


def test_e8_omniscient_calibration(capsys):
    rows = []
    for name in DATASETS:
        tree = make_dataset(name, scale=scale_for(name), levels=2).build(seed=0)
        eps_level = 1.0
        total = eps_level * tree.num_levels

        expected = omniscient_expected_error(tree.root.data, eps_level)
        simulated = np.mean([
            OmniscientBaseline().run(
                tree, total, rng=np.random.default_rng(seed)
            )[tree.root.name]
            for seed in range(num_runs())
        ])

        algo = TopDown(CumulativeEstimator(max_size=MAX_SIZE))
        topdown = np.mean([
            earthmover_distance(
                tree.root.data,
                algo.run(tree, total, rng=np.random.default_rng(seed))[
                    tree.root.name
                ],
            )
            for seed in range(num_runs())
        ])
        rows.append((name, expected, simulated, topdown))

    with capsys.disabled():
        print("\n[E8] Omniscient calibration at eps=1/level (Section 6.2)")
        print(f"{'data':>10}{'formula':>14}{'simulated':>14}"
              f"{'topdown Hc':>14}{'ratio':>8}")
        for name, expected, simulated, topdown in rows:
            ratio = topdown / max(expected, 1.0)
            print(f"{name:>10}{expected:>14,.1f}{simulated:>14,.1f}"
                  f"{topdown:>14,.1f}{ratio:>8.1f}x")

    for name, expected, simulated, topdown in rows:
        # Simulated omniscient L1 error has mean #distinct/ε; the formula
        # uses the std √2/ε, so the ratio must sit near 1/√2.
        assert simulated == pytest.approx(expected / np.sqrt(2), rel=0.25)
        # A real DP algorithm cannot beat the floor by more than noise, and
        # a good one should be within a modest factor of it.
        assert topdown < 60 * expected
