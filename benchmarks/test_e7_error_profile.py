"""E7 — error anatomy of the Hg and Hc methods (Figure 1).

Figure 1 plots, for both single-node methods, the estimation error as a
function of position along the (cumulative) group-size axis.  Findings:

* **Hg method** — errors concentrate around the *small* group sizes (the
  isotonic fit averages large noisy blocks of small groups, but tracks the
  few large groups precisely);
* **Hc method** — errors are lower at small sizes but spread across the
  rest of the size range.

We regenerate the two profiles on the housing root histogram and assert the
concentration contrast quantitatively: the fraction of total EMD mass lying
in the small-size half of the cumulative axis must be higher for Hg than
for Hc.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import MAX_SIZE, num_runs, scale_for
from repro.core.estimators import CumulativeEstimator, UnattributedEstimator
from repro.core.metrics import emd_profile
from repro.datasets import make_dataset


def average_profile(estimator, data, epsilon=1.0):
    profiles = []
    for seed in range(num_runs()):
        result = estimator.estimate(data, epsilon, rng=np.random.default_rng(seed))
        profile = emd_profile(data, result.estimate)
        profiles.append(profile)
    width = max(p.size for p in profiles)
    padded = np.zeros((len(profiles), width))
    for row, profile in zip(padded, profiles):
        row[: profile.size] = profile
    return padded.mean(axis=0)


def small_size_error_fraction(profile, data, quantile=0.5):
    """Fraction of EMD mass at sizes below the size containing `quantile`
    of the groups (the paper's x-axis is the cumulative group count)."""
    cumulative = np.cumsum(data.histogram)
    threshold = quantile * data.num_groups
    split = int(np.searchsorted(cumulative, threshold))
    total = profile.sum()
    return float(profile[: split + 1].sum() / total) if total > 0 else 0.0


def test_e7_error_profiles(capsys):
    tree = make_dataset("housing", scale=scale_for("housing")).build(seed=0)
    data = tree.root.data

    hg_profile = average_profile(UnattributedEstimator(), data)
    hc_profile = average_profile(CumulativeEstimator(max_size=MAX_SIZE), data)

    hg_small = small_size_error_fraction(hg_profile, data)
    hc_small = small_size_error_fraction(hc_profile, data)

    with capsys.disabled():
        print("\n[E7] Error localisation (Figure 1), housing root, eps=1")
        print(f"  fraction of EMD mass at small sizes:  "
              f"Hg={hg_small:.2%}  Hc={hc_small:.2%}")
        print(f"  total EMD:  Hg={hg_profile.sum():,.0f}  "
              f"Hc={hc_profile.sum():,.0f}")
        # A coarse textual rendition of the two profiles.
        for label, profile in (("Hg", hg_profile), ("Hc", hc_profile)):
            bins = np.array_split(profile, 10)
            bars = "".join(
                "#" if chunk.sum() > profile.sum() / 20 else "."
                for chunk in bins
            )
            print(f"  {label} profile (10 size-decile bins): [{bars}]")

    assert hg_small > hc_small, (
        "Hg errors should concentrate at small sizes relative to Hc "
        f"(Hg {hg_small:.2%} vs Hc {hc_small:.2%})"
    )


def test_e7_profile_benchmark(benchmark):
    tree = make_dataset("housing", scale=scale_for("housing")).build(seed=0)
    data = tree.root.data
    estimator = UnattributedEstimator()
    rng = np.random.default_rng(0)

    def body():
        result = estimator.estimate(data, 1.0, rng=rng)
        return emd_profile(data, result.estimate)

    benchmark(body)
