"""E3 — Bottom-Up vs top-down Hc consistency (Section 6.2.2).

Paper table (total ε = 1.0, three levels):

                Part. Synth.   White      Hawaiian   Taxi
    Level 0 BU  78,459         448,909    13,968     20,731
            Hc  32,480         17,000     1,381      10,547
    Level 1 BU  1,512          8,722      270        10,405
            Hc  1,000          1,512      118        5,432
    Level 2 BU  25             152        4          773
            Hc  80             364        22         1,602

Reproduction target: BU wins at the leaves (level 2) by a small margin;
the top-down Hc algorithm wins at levels 0 and 1 by large factors.  The
effect requires many leaves, so the census-like datasets use the full
national 3-level hierarchy (52 states, hundreds of counties) and taxi its
full geography, as in the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import MAX_SIZE, num_runs, scale_for
from repro.core.consistency.bottomup import BottomUp
from repro.core.consistency.topdown import TopDown
from repro.core.estimators import CumulativeEstimator
from repro.datasets import make_dataset
from repro.evaluation.runner import per_level_emd

DATASETS = ["housing", "white", "hawaiian", "taxi"]


def build_tree(name):
    """Full national 3-level census hierarchies; taxi's full geography."""
    return make_dataset(name, scale=scale_for(name), levels=3).build(seed=0)


def mean_levels(tree, algo):
    errors = []
    for seed in range(num_runs()):
        estimates = algo.run(tree, 1.0, rng=np.random.default_rng(seed)).estimates
        errors.append(per_level_emd(tree, estimates))
    return np.mean(errors, axis=0)


def test_e3_bottom_up_vs_topdown_table(capsys):
    estimator = CumulativeEstimator(max_size=MAX_SIZE)
    results = {}
    for name in DATASETS:
        tree = build_tree(name)
        results[name] = {
            "BU": mean_levels(tree, BottomUp(estimator)),
            "Hc": mean_levels(tree, TopDown(estimator)),
        }

    with capsys.disabled():
        print("\n[E3] Bottom-Up vs top-down Hc, total eps=1.0 (Section 6.2.2)")
        print(f"{'':>10}" + "".join(f"{name:>14}" for name in DATASETS))
        for level in range(3):
            print(f"Level {level}")
            for method in ("BU", "Hc"):
                cells = "".join(
                    f"{results[name][method][level]:>14,.1f}" for name in DATASETS
                )
                print(f"{method:>10}{cells}")

    for name in DATASETS:
        bu, hc = results[name]["BU"], results[name]["Hc"]
        assert bu[2] < hc[2], f"bottom-up must win at the leaves on {name}"
        if name != "taxi":
            assert hc[0] < bu[0], f"top-down must win at the root on {name}"
    # Taxi has only 28 leaves: at benchmark scale the leaf biases that
    # dominate the paper's BU level-0 error partially cancel, so the root
    # ordering is not asserted for it (a known reproduction deviation).  The
    # census datasets, with hundreds of counties, reproduce it robustly.


@pytest.mark.parametrize("algo_name", ["topdown", "bottomup"])
def test_e3_release_benchmark(benchmark, algo_name):
    tree = make_dataset("white", scale=scale_for("white"), levels=3).build(seed=0)
    estimator = CumulativeEstimator(max_size=MAX_SIZE)
    algo = TopDown(estimator) if algo_name == "topdown" else BottomUp(estimator)
    rng = np.random.default_rng(0)
    benchmark(lambda: algo.run(tree, 1.0, rng=rng))
