"""E2 — ruling out the naive method (Section 6.2.1).

Paper table: average EMD of the naive strategy at ε = 1 is in the billions —
several orders of magnitude worse than the Hg/Hc methods:

    Synthetic      White          Hawaiian       Taxi
    4,462,728,374  4,809,679,734  4,027,891,692  208,977,518

At benchmark scale the absolute numbers shrink, but the reproduction target
is the *ratio*: naive error must sit orders of magnitude above the Hc
method's on every dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import MAX_SIZE, num_runs, scale_for
from repro.core.estimators import CumulativeEstimator, NaiveEstimator
from repro.core.metrics import earthmover_distance
from repro.datasets import make_dataset

DATASETS = ["housing", "white", "hawaiian", "taxi"]


def average_root_error(estimator, data, epsilon=1.0):
    errors = []
    for seed in range(num_runs()):
        result = estimator.estimate(data, epsilon, rng=np.random.default_rng(seed))
        errors.append(earthmover_distance(data, result.estimate))
    return float(np.mean(errors))


def test_e2_naive_error_table(capsys):
    rows = {}
    for name in DATASETS:
        tree = make_dataset(name, scale=scale_for(name)).build(seed=0)
        data = tree.root.data
        naive_error = average_root_error(NaiveEstimator(max_size=MAX_SIZE), data)
        hc_error = average_root_error(CumulativeEstimator(max_size=MAX_SIZE), data)
        rows[name] = (naive_error, hc_error)

    with capsys.disabled():
        print("\n[E2] Naive method vs Hc at eps=1 (Section 6.2.1), root node")
        print(f"{'data':>10}{'naive emd':>16}{'Hc emd':>14}{'ratio':>10}")
        for name, (naive_error, hc_error) in rows.items():
            ratio = naive_error / max(hc_error, 1.0)
            print(f"{name:>10}{naive_error:>16,.0f}{hc_error:>14,.0f}"
                  f"{ratio:>10,.0f}x")

    for name, (naive_error, hc_error) in rows.items():
        assert naive_error > 20 * hc_error, (
            f"naive should be orders of magnitude worse on {name}"
        )


@pytest.mark.parametrize("name", ["hawaiian", "taxi"])
def test_e2_naive_benchmark(benchmark, name):
    tree = make_dataset(name, scale=scale_for(name)).build(seed=0)
    estimator = NaiveEstimator(max_size=MAX_SIZE)
    rng = np.random.default_rng(0)
    benchmark(lambda: estimator.estimate(tree.root.data, 1.0, rng=rng))
