"""A3 — L1 vs L2 post-processing for the Hc method (Section 4.3).

The paper: "we found that the L1 version of the problem (with p = 1)
performs better than the L2 version, consistent with prior observations on
unattributed histograms [Lin & Kifer]."  This ablation sweeps both losses
over all four datasets at the root node.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import MAX_SIZE, num_runs, scale_for
from repro.core.estimators import CumulativeEstimator
from repro.core.metrics import earthmover_distance
from repro.datasets import make_dataset

DATASETS = ["housing", "white", "hawaiian", "taxi"]


def average_error(estimator, data, epsilon=0.5):
    errors = []
    for seed in range(num_runs()):
        result = estimator.estimate(data, epsilon, rng=np.random.default_rng(seed))
        errors.append(earthmover_distance(data, result.estimate))
    return float(np.mean(errors))


def test_a3_l1_beats_l2(capsys):
    rows = {}
    for name in DATASETS:
        tree = make_dataset(name, scale=scale_for(name)).build(seed=0)
        data = tree.root.data
        rows[name] = {
            p: average_error(CumulativeEstimator(max_size=MAX_SIZE, p=p), data)
            for p in (1, 2)
        }

    with capsys.disabled():
        print("\n[A3] Hc post-processing loss: L1 vs L2 (eps=0.5, root)")
        print(f"{'data':>10}{'p=1 (L1)':>14}{'p=2 (L2)':>14}{'L1/L2':>8}")
        for name, errors in rows.items():
            print(f"{name:>10}{errors[1]:>14,.1f}{errors[2]:>14,.1f}"
                  f"{errors[1] / max(errors[2], 1.0):>8.2f}")

    wins = sum(errors[1] <= errors[2] * 1.05 for errors in rows.values())
    assert wins >= 3, "L1 should be at least as accurate on most datasets"


@pytest.mark.parametrize("p", [1, 2])
def test_a3_hc_benchmark(benchmark, p):
    tree = make_dataset("white", scale=scale_for("white")).build(seed=0)
    estimator = CumulativeEstimator(max_size=MAX_SIZE, p=p)
    rng = np.random.default_rng(0)
    benchmark(lambda: estimator.estimate(tree.root.data, 1.0, rng=rng))
