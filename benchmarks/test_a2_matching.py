"""A2 — optimality and scaling of the matching algorithm (Section 5.2).

Two claims back Algorithm 2:

* **Optimality (Lemma 5)** — the greedy smallest-to-smallest sweep attains
  the minimum-cost perfect matching.  Certified here against scipy's
  Hungarian algorithm on random instances (the Hungarian algorithm is the
  O(G³) general-purpose solver the paper's specialised algorithm replaces).
* **O(G log G) scaling** — doubling the number of groups should roughly
  double the runtime (the log factor is invisible at these sizes), where
  the Hungarian algorithm would grow ~8x.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.consistency.matching import (
    match_parent_to_children,
    matching_cost_lower_bound,
)


def random_instance(rng, total, num_children=4, spread=50):
    cuts = np.sort(rng.integers(0, total + 1, size=num_children - 1))
    counts = np.diff(np.concatenate([[0], cuts, [total]]))
    children = [
        np.sort(rng.integers(0, spread, size=int(count))) for count in counts
    ]
    parent = np.sort(
        np.clip(np.concatenate(children) + rng.integers(-2, 3, size=total), 0, None)
    )
    return parent, children


def test_a2_optimality_certificates(capsys):
    from scipy.optimize import linear_sum_assignment

    rng = np.random.default_rng(7)
    checked = 0
    for _ in range(25):
        parent, children = random_instance(rng, total=int(rng.integers(2, 60)))
        result = match_parent_to_children(
            parent, np.ones(parent.size),
            children, [np.ones(c.size) for c in children],
        )
        bottom = np.concatenate(children)
        cost = np.abs(parent[:, None] - bottom[None, :])
        rows, cols = linear_sum_assignment(cost)
        assert result.cost == int(cost[rows, cols].sum())
        checked += 1

    with capsys.disabled():
        print(f"\n[A2] Matching optimality: {checked}/25 random instances "
              "match the Hungarian optimum")


def test_a2_scaling(capsys):
    rng = np.random.default_rng(1)
    timings = {}
    for total in (50_000, 100_000, 200_000):
        parent, children = random_instance(rng, total=total, spread=2000)
        unit = [np.ones(c.size) for c in children]
        start = time.perf_counter()
        result = match_parent_to_children(
            parent, np.ones(parent.size), children, unit
        )
        timings[total] = time.perf_counter() - start
        assert result.cost == matching_cost_lower_bound(parent, children)

    with capsys.disabled():
        print("\n[A2] Matching runtime scaling (expect ~linear):")
        for total, seconds in timings.items():
            print(f"  G={total:>8,}  {seconds * 1000:>8.1f} ms")

    # 4x the groups should cost well under the 64x of a cubic algorithm.
    assert timings[200_000] < 16 * max(timings[50_000], 1e-3)


def test_a2_matching_benchmark(benchmark):
    rng = np.random.default_rng(2)
    parent, children = random_instance(rng, total=100_000, spread=2000)
    unit = [np.ones(c.size) for c in children]

    benchmark(
        lambda: match_parent_to_children(
            parent, np.ones(parent.size), children, unit
        )
    )
