"""A4 — insensitivity to the public bound K (Section 4.3, footnote 6).

The paper: "This method is not very sensitive to K — in the experiments we
used K = 100,000 on datasets where the largest group had around 10,000
people — an order of magnitude difference and still the estimated size of
the largest group ended up being around 10,000."

This ablation sweeps K across two orders of magnitude around the true
maximum on the housing data and verifies (a) EMD error moves by far less
than K does, and (b) the estimated maximum group size stays near the true
maximum instead of drifting toward K.  It also exercises footnote 6's
budget-sliver estimator for K.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import num_runs, scale_for
from repro.core.estimators import CumulativeEstimator, estimate_public_bound
from repro.core.metrics import earthmover_distance
from repro.datasets import make_dataset


def test_a4_k_insensitivity(capsys):
    tree = make_dataset("housing", scale=scale_for("housing")).build(seed=0)
    data = tree.root.data
    true_max = data.max_size

    rows = {}
    for multiplier in (1.2, 2, 10, 100):
        k = int(true_max * multiplier)
        errors, estimated_maxes = [], []
        for seed in range(num_runs()):
            result = CumulativeEstimator(max_size=k).estimate(
                data, 1.0, rng=np.random.default_rng(seed)
            )
            errors.append(earthmover_distance(data, result.estimate))
            estimated_maxes.append(result.estimate.max_size)
        rows[k] = (float(np.mean(errors)), float(np.mean(estimated_maxes)))

    with capsys.disabled():
        print("\n[A4] Sensitivity to the public bound K "
              f"(housing root, true max size {true_max:,}, eps=1)")
        print(f"{'K':>12}{'emd':>12}{'est. max size':>16}")
        for k, (error, est_max) in rows.items():
            print(f"{k:>12,}{error:>12,.1f}{est_max:>16,.0f}")

    errors = [error for error, _ in rows.values()]
    # Two orders of magnitude of K moves the error by a small factor only.
    assert max(errors) < 5 * min(errors)
    # The estimated maximum tracks the data, not the bound.
    for k, (_, est_max) in rows.items():
        assert est_max < true_max * 3 + 100


def test_a4_private_bound_estimation(capsys):
    """Footnote 6's K estimator: a tiny budget still upper-bounds the max."""
    tree = make_dataset("housing", scale=scale_for("housing")).build(seed=0)
    data = tree.root.data
    bounds = [
        estimate_public_bound(data, epsilon=1e-3, rng=np.random.default_rng(seed))
        for seed in range(20)
    ]
    coverage = np.mean([bound >= data.max_size for bound in bounds])

    with capsys.disabled():
        print(f"\n[A4] Private K estimation at eps=1e-3: "
              f"bounds {min(bounds):,} .. {max(bounds):,}, "
              f"true max {data.max_size:,}, coverage {coverage:.0%}")

    assert coverage == 1.0  # designed for >= 99.95% coverage


def test_a4_bound_benchmark(benchmark):
    tree = make_dataset("housing", scale=scale_for("housing")).build(seed=0)
    rng = np.random.default_rng(0)
    benchmark(lambda: estimate_public_bound(tree.root.data, 1e-3, rng=rng))
