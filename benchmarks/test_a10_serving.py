"""A10 — concurrent query serving vs the naive per-query loop.

The serving subsystem's acceptance criteria, measured on a store of 20
releases under a zipfian request mix (the shape real consumer traffic
takes — a hot head of popular releases, a long tail):

1. **Bit-identical answers** — the planned/batched engine and the naive
   loop (resolve + full artifact decode + one scalar call per request)
   agree on every value *and* every error, to the last bit.
2. **Throughput** — batched execution with the hot cache answers the
   mix at least 5× faster than the naive loop (timing bars skip on
   shared CI runners, as in A8).
3. **Decode elimination** — the hot cache decodes each artifact exactly
   once: serving 30× more requests than there are releases performs no
   more loads than there are releases, and replaying the whole mix a
   second time performs **zero** additional decodes.
4. **Schema-stable BENCH_serving.json** — QPS on both paths, speedup,
   cache hit ratio and p50/p95/p99 latency under fixed keys.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api.store import ReleaseStore
from repro.serve import (
    ServingEngine,
    answers_match,
    generate_requests,
    populate_bench_store,
    run_benchmark,
    run_served,
)

#: The acceptance shape: >= 20 releases, zipfian popularity.
NUM_RELEASES = 20
NUM_REQUESTS = 600
POPULARITY_SKEW = 1.1
SPEEDUP_BAR = 5.0


@pytest.fixture(scope="module")
def store(tmp_path_factory) -> ReleaseStore:
    store = ReleaseStore(tmp_path_factory.mktemp("a10-store"))
    populate_bench_store(store, num_releases=NUM_RELEASES)
    return store


def test_a10_serving_beats_naive_loop(store, capsys, tmp_path):
    assert len(store) == NUM_RELEASES

    report = run_benchmark(
        store, num_requests=NUM_REQUESTS, popularity_skew=POPULARITY_SKEW,
        seed=0,
    )

    # -- 1. equal results: bit-identical values, identical errors.
    assert report.answers_identical
    assert answers_match(report.naive_results, report.served_results)
    assert all(result.ok for result in report.served_results)

    # -- 3. the hot cache eliminates repeat decodes: 600 requests touch
    # at most 20 artifacts once each.
    loads = report.metrics["artifact_loads"]
    assert loads <= NUM_RELEASES
    assert report.metrics["cache_hit_ratio"] > 0.5

    # -- 4. schema-stable BENCH_serving.json.
    payload = json.loads(report.write(tmp_path / "BENCH_serving.json").read_text())
    assert payload["schema_version"] == 1
    assert set(payload["served"]["latency_ms"]) == {"p50", "p95", "p99"}
    for key in ("qps", "cache_hit_ratio"):
        assert key in payload["served"]
    assert payload["naive"]["qps"] > 0

    with capsys.disabled():
        print(f"\n[A10] serving {NUM_REQUESTS} zipfian requests over "
              f"{NUM_RELEASES} releases")
        print(f"  naive loop   {report.naive_seconds:8.3f} s  "
              f"({report.naive_qps:>10,.0f} qps)")
        print(f"  served       {report.served_seconds:8.3f} s  "
              f"({report.served_qps:>10,.0f} qps)  "
              f"{report.speedup:.1f}x")
        print(f"  cache        {loads} decode(s), hit ratio "
              f"{report.metrics['cache_hit_ratio']:.3f}, "
              f"memo hits {report.metrics['memo_hits']}")
        latency = report.metrics["latency_ms"]
        print(f"  latency      p50 {latency['p50']:.3f} ms | "
              f"p95 {latency['p95']:.3f} ms | p99 {latency['p99']:.3f} ms")

    # -- 2. the >= 5x throughput bar (not meaningful on noisy shared CI).
    if os.environ.get("CI"):
        pytest.skip("shared CI runner: timing assertions not meaningful")
    assert report.speedup >= SPEEDUP_BAR, (
        f"expected >= {SPEEDUP_BAR}x over the naive loop, measured "
        f"{report.speedup:.2f}x"
    )


def test_a10_replay_performs_zero_additional_decodes(store):
    requests = generate_requests(
        store, 200, seed=1, popularity_skew=POPULARITY_SKEW,
    )
    with ServingEngine(store, cache_size=NUM_RELEASES) as engine:
        first, _ = run_served(engine, requests, batch_size=50)
        loads_after_first = engine.metrics.snapshot()["artifact_loads"]
        second, _ = run_served(engine, requests, batch_size=50)
        snapshot = engine.metrics.snapshot()

    assert answers_match(first, second)
    # Warm cache: the replay decoded nothing new and memoized everything.
    assert snapshot["artifact_loads"] == loads_after_first
    assert snapshot["memo_hits"] >= len(requests)


def test_a10_concurrent_submission_is_consistent(store):
    """The thread-pool request path returns the same answers as the
    serial batch path under concurrent submission."""
    requests = generate_requests(store, 120, seed=2)
    with ServingEngine(store, max_workers=8) as engine:
        futures = [engine.submit(spec) for spec in requests]
        threaded = [future.result() for future in futures]
    with ServingEngine(store) as engine:
        serial = engine.execute_batch(requests)
    assert answers_match(threaded, serial)
