"""A6 — budget-split ablation for the top-down algorithm.

Algorithm 1 divides ε evenly across the L+1 levels.  That choice is a free
parameter under sequential composition, and hierarchical-histogram work
(Hay et al., Qardaji et al.) shows the optimal split depends on which
levels the analyst cares about.  This ablation sweeps uniform, root-heavy
and leaf-heavy splits on a 2-level hierarchy, mapping the trade-off the
bottom-up baseline represents in the extreme.

Expected shape: leaf-heavy splits improve leaf error and hurt the root;
root-heavy splits do the opposite; the uniform default is a reasonable
middle ground on both axes.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import MAX_SIZE, num_runs, scale_for
from repro.core.consistency.topdown import TopDown
from repro.core.estimators import CumulativeEstimator
from repro.datasets import make_dataset
from repro.evaluation.runner import per_level_emd

SPLITS = {
    "root-heavy 3:1": np.array([3.0, 1.0]),
    "uniform 1:1": np.array([1.0, 1.0]),
    "leaf-heavy 1:3": np.array([1.0, 3.0]),
}


def test_a6_budget_split_tradeoff(capsys):
    tree = make_dataset("white", scale=scale_for("white")).build(seed=0)

    rows = {}
    for label, weights in SPLITS.items():
        algo = TopDown(CumulativeEstimator(max_size=MAX_SIZE),
                       level_weights=weights)
        errors = []
        for seed in range(num_runs()):
            estimates = algo.run(
                tree, 2.0, rng=np.random.default_rng(seed)
            ).estimates
            errors.append(per_level_emd(tree, estimates))
        rows[label] = np.mean(errors, axis=0)

    with capsys.disabled():
        print("\n[A6] Budget split ablation (white, total eps=2)")
        print(f"{'split':>16}{'level 0':>12}{'level 1':>12}")
        for label, (root, leaf) in rows.items():
            print(f"{label:>16}{root:>12,.1f}{leaf:>12,.1f}")

    assert rows["root-heavy 3:1"][0] < rows["leaf-heavy 1:3"][0]
    assert rows["leaf-heavy 1:3"][1] < rows["root-heavy 3:1"][1]


def test_a6_split_benchmark(benchmark):
    tree = make_dataset("hawaiian", scale=scale_for("hawaiian")).build(seed=0)
    algo = TopDown(
        CumulativeEstimator(max_size=MAX_SIZE),
        level_weights=np.array([1.0, 3.0]),
    )
    rng = np.random.default_rng(0)
    benchmark(lambda: algo.run(tree, 1.0, rng=rng))
