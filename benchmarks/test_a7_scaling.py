"""A7 — runtime scaling of the full release pipeline.

The paper ran on a dual 8-core Xeon with 64 GB RAM and limited its 3-level
census experiments to the west coast "because there are over 3,000
counties (hence 3,000 isotonic regressions)".  This ablation measures how
our implementation's wall-clock scales with the number of groups and with
the number of nodes, verifying the claimed complexities end to end:

* matching is O(G log G) — doubling G roughly doubles release time once
  group-dominated costs lead;
* the Hc estimator is O(#nodes × K) — node count, not population, drives
  its cost (the paper's 3,000-isotonic-regressions remark).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import release_seconds
from repro.core.consistency.topdown import TopDown
from repro.core.estimators import CumulativeEstimator, UnattributedEstimator
from repro.datasets import make_dataset


def test_a7_group_scaling(capsys):
    """Hg-method release time vs number of groups (matching-dominated)."""
    timings = {}
    for scale in (2e-3, 8e-3, 32e-3):
        tree = make_dataset("white", scale=scale).build(seed=0)
        timings[tree.root.num_groups] = release_seconds(
            tree, TopDown(UnattributedEstimator())
        )

    with capsys.disabled():
        print("\n[A7] Hg release time vs groups (2-level white)")
        for groups, seconds in timings.items():
            print(f"  G={groups:>9,}  {seconds * 1000:>8.1f} ms")

    groups = sorted(timings)
    # 16x the groups should cost far less than a quadratic 256x.
    assert timings[groups[-1]] < 40 * max(timings[groups[0]], 1e-3)


def test_a7_node_scaling(capsys):
    """Hc-method release time vs node count at fixed population."""
    timings = {}
    for levels, label in ((2, "2-level"), (3, "3-level")):
        tree = make_dataset("hawaiian", scale=1e-2, levels=levels).build(seed=0)
        node_count = sum(len(level) for level in tree.levels())
        timings[label] = (node_count, release_seconds(
            tree, TopDown(CumulativeEstimator(max_size=2_000))
        ))

    with capsys.disabled():
        print("\n[A7] Hc release time vs node count (hawaiian)")
        for label, (nodes, seconds) in timings.items():
            print(f"  {label}: {nodes:>5} nodes  {seconds * 1000:>8.1f} ms")

    nodes2, seconds2 = timings["2-level"]
    nodes3, seconds3 = timings["3-level"]
    # Cost per node must not blow up as the tree deepens.
    assert seconds3 / nodes3 < 10 * max(seconds2 / nodes2, 1e-6)


def test_a7_full_pipeline_benchmark(benchmark):
    tree = make_dataset("white", scale=1e-3).build(seed=0)
    algo = TopDown(CumulativeEstimator(max_size=5_000))
    rng = np.random.default_rng(0)
    benchmark(lambda: algo.run(tree, 1.0, rng=rng))
