"""A5 — ablations for the paper's cited-but-unused extensions.

Three short studies:

* **Bayesian post-processing** (Section 4.3's Lin-&-Kifer remark): exact
  posterior-mean repair vs isotonic repair on a node small enough for the
  quadratic grid.  With a jump-sparsity prior the posterior matches or
  slightly beats isotonic; with a flat prior it loses — consistent with
  the cited work's gains coming from informative priors.
* **Private method selection** (footnote 4/8): the density probe should
  route dense data to Hc and sparse data to Hg, landing within a small
  factor of the better fixed choice on both.
* **Private Groups table** (footnote 5): error of the NNLS-consistent
  group counts at the root vs the raw noisy count.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import num_runs, scale_for
from repro.core.estimators import (
    BayesianCumulativeEstimator,
    CumulativeEstimator,
    DensitySelector,
    UnattributedEstimator,
)
from repro.core.metrics import earthmover_distance
from repro.core.private_groups import release_group_counts
from repro.datasets import make_dataset
from repro.hierarchy.build import from_leaf_histograms


def average_error(estimator, data, epsilon, runs):
    errors = []
    for seed in range(runs):
        result = estimator.estimate(data, epsilon, rng=np.random.default_rng(seed))
        errors.append(earthmover_distance(data, result.estimate))
    return float(np.mean(errors))


def test_a5_bayesian_postprocessing(capsys):
    """Posterior-mean vs isotonic on a county-scale node."""
    tree = make_dataset("hawaiian", scale=scale_for("hawaiian"), levels=2).build(seed=0)
    # Use a single state's histogram: small G keeps the grid tractable.
    data = tree.level(1)[0].data
    runs = max(num_runs(), 5)

    rows = {
        "isotonic L1": average_error(
            CumulativeEstimator(max_size=50), data, 0.5, runs
        ),
        "bayes flat prior": average_error(
            BayesianCumulativeEstimator(max_size=50, jump_penalty=1.0),
            data, 0.5, runs,
        ),
        "bayes sparse prior": average_error(
            BayesianCumulativeEstimator(max_size=50, jump_penalty=0.1),
            data, 0.5, runs,
        ),
    }
    with capsys.disabled():
        print(f"\n[A5] Bayesian post-processing (hawaiian state, G={data.num_groups:,}, eps=0.5)")
        for label, error in rows.items():
            print(f"  {label:<20} emd={error:,.1f}")

    assert rows["bayes sparse prior"] <= rows["bayes flat prior"] * 1.05
    assert rows["bayes sparse prior"] <= rows["isotonic L1"] * 1.25


def test_a5_density_selector(capsys):
    """The selector should be near the better fixed method on both regimes."""
    runs = max(num_runs(), 5)
    dense = make_dataset("white", scale=scale_for("white")).build(seed=0).root.data
    sparse = make_dataset("hawaiian", scale=scale_for("hawaiian")).build(seed=0).root.data

    rows = {}
    for label, data in (("white(dense)", dense), ("hawaiian(sparse)", sparse)):
        hc = average_error(CumulativeEstimator(max_size=20_000), data, 1.0, runs)
        hg = average_error(UnattributedEstimator(), data, 1.0, runs)
        auto = average_error(DensitySelector(max_size=20_000), data, 1.0, runs)
        rows[label] = (hc, hg, auto)

    with capsys.disabled():
        print("\n[A5] Density-based selection (root, eps=1)")
        print(f"{'data':>18}{'Hc':>12}{'Hg':>12}{'auto':>12}")
        for label, (hc, hg, auto) in rows.items():
            print(f"{label:>18}{hc:>12,.1f}{hg:>12,.1f}{auto:>12,.1f}")

    for label, (hc, hg, auto) in rows.items():
        # Within 1.5x of the better fixed choice (it spends 5% on the probe).
        assert auto <= 1.5 * min(hc, hg), label


def test_a5_private_group_counts(capsys):
    """Footnote 5: hierarchical NNLS vs raw noisy counts."""
    tree = make_dataset("hawaiian", scale=scale_for("hawaiian")).build(seed=0)
    raw_errors, fitted_errors = [], []
    for seed in range(max(num_runs() * 4, 12)):
        released = release_group_counts(tree, 1.0, rng=np.random.default_rng(seed))
        raw_errors.append(abs(released.noisy["national"] - tree.root.num_groups))
        fitted_errors.append(abs(released["national"] - tree.root.num_groups))

    with capsys.disabled():
        print("\n[A5] Private Groups table (hawaiian, eps=1): root count error")
        print(f"  raw noisy count:      {np.mean(raw_errors):.2f}")
        print(f"  NNLS-consistent:      {np.mean(fitted_errors):.2f}")

    assert np.mean(fitted_errors) <= np.mean(raw_errors) + 0.5


def test_a5_bayes_benchmark(benchmark):
    tree = make_dataset("hawaiian", scale=scale_for("hawaiian"), levels=2).build(seed=0)
    data = tree.level(1)[0].data
    estimator = BayesianCumulativeEstimator(max_size=50, jump_penalty=0.1)
    rng = np.random.default_rng(0)
    benchmark(lambda: estimator.estimate(data, 0.5, rng=rng))
