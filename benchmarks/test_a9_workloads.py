"""A9 — generated workloads at scenario scale through the engine grid.

The paper's experiments stop at three levels and a handful of fixed
datasets; the workload subsystem (:mod:`repro.workloads`) opens the
depth/scale axis.  This benchmark drives the acceptance scenario — a
5-level power-law hierarchy with 10⁵ leaf groups — end to end through the
cached, parallel experiment grid and checks, in order of importance:

1. **Correctness at depth** — every release method produces per-level EMD
   rows for all 5 levels, and generation preserves the public group count
   at every depth (the matching precondition).
2. **Bit-identical serial/parallel execution** — the engine's guarantee
   must survive scenario-scale inputs, not just the paper's small trees.
3. **A scaling curve** — wall-clock per cell as the group count grows
   2k → 20k → 100k, printed for the record; per-cell cost must grow far
   slower than the group count (the pipeline is dominated by per-node
   histogram work, not per-group work).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine import ExperimentGrid, MethodSpec, run_grid
from repro.workloads import get_workload, materialize

MAX_SIZE = 2_000
EPSILON = 1.0
GROUP_COUNTS = (2_000, 20_000, 100_000)

METHODS = [
    MethodSpec.topdown("hc", max_size=MAX_SIZE, label="Hc"),
    MethodSpec.bottomup("hg", max_size=MAX_SIZE, label="BU-Hg"),
]


def scaled_groups(base: int) -> int:
    """REPRO_SCALE raises fidelity; the acceptance floor of 10^5 leaf
    groups at the top size is never scaled below."""
    return max(base, int(base * float(os.environ.get("REPRO_SCALE", "1.0"))))


def test_a9_deep_workload_grid_and_scaling(capsys):
    deep = get_workload("powerlaw-deep")
    assert deep.depth == 5

    curve = []
    for base in GROUP_COUNTS:
        spec = deep.with_groups(scaled_groups(base))
        start = time.perf_counter()
        tree = materialize(spec, seed=0)
        generate_seconds = time.perf_counter() - start

        assert tree.num_levels == 5
        # Group counts are preserved at every depth by construction.
        assert [row["groups"] for row in tree.level_statistics()] == (
            [spec.num_groups] * 5
        )

        grid = ExperimentGrid(
            {"powerlaw-deep": tree}, METHODS,
            epsilons=[EPSILON], trials=2, seed=0,
        )
        start = time.perf_counter()
        serial = run_grid(grid, mode="serial")
        serial_seconds = time.perf_counter() - start
        per_cell = serial_seconds / len(serial)

        for cell in serial:
            assert len(cell.level_emd) == 5  # every depth scored
            assert all(np.isfinite(v) and v >= 0 for v in cell.level_emd)

        curve.append((spec.num_groups, generate_seconds, per_cell, grid,
                      serial))

    # -- acceptance scenario: serial == parallel on the 10^5-group tree.
    _groups, _gen, _cell, grid, serial = curve[-1]
    workers = os.cpu_count() or 1
    start = time.perf_counter()
    parallel = run_grid(grid, mode="process", workers=workers)
    parallel_seconds = time.perf_counter() - start
    assert parallel == serial  # bit-identical, scenario scale

    with capsys.disabled():
        print(f"\n[A9] 5-level power-law workload scaling "
              f"({len(METHODS)} methods x 2 trials, eps={EPSILON})")
        print(f"  {'groups':>10} {'generate':>10} {'per cell':>10}")
        for groups, generate_seconds, per_cell, _, _ in curve:
            print(f"  {groups:>10,} {generate_seconds:>9.2f}s "
                  f"{per_cell:>9.2f}s")
        print(f"  parallel rerun of the {curve[-1][0]:,}-group grid on "
              f"{workers} worker(s): {parallel_seconds:.2f}s, bit-identical")

    if os.environ.get("CI"):
        pytest.skip("shared CI runner: timing assertions not meaningful")

    # 50x more groups must cost far less than 50x per cell: the pipeline
    # is per-node-histogram bound, not per-group bound.
    small, large = curve[0][2], curve[-1][2]
    assert large < 25 * max(small, 1e-3)


def test_a9_cached_rerun_at_scale(tmp_path):
    """The on-disk cache short-circuits scenario-scale reruns too."""
    spec = get_workload("powerlaw-deep").with_groups(20_000)
    tree = materialize(spec, seed=0)
    grid = ExperimentGrid(
        {"powerlaw-deep": tree}, METHODS, epsilons=[EPSILON],
        trials=2, seed=0,
    )
    first = run_grid(grid, mode="serial", cache=str(tmp_path / "cells"))
    rerun = run_grid(grid, mode="serial", cache=str(tmp_path / "cells"))
    assert all(cell.cached for cell in rerun)
    assert [c.level_emd for c in rerun] == [c.level_emd for c in first]
